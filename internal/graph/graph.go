package graph

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// NodeFunc is a node's body: one session program that receives its
// upstream outputs as resolved Inputs and returns the node's own output.
// The returned value is handed to downstream nodes through the node's
// Future AFTER this session's runtime has fully unwound; it must be
// plain data — carrying a *core.Promise or *core.Task out of the session
// would smuggle one runtime's state into another and is unsupported.
type NodeFunc func(t *core.Task, in Inputs) (any, error)

// Retry is a node's retry policy. MaxAttempts bounds the TOTAL number
// of attempts (sessions) the node may consume; <= 1 means no retries.
// Backoff is the delay before the second attempt, doubling per further
// attempt and capped at 32x; zero retries immediately. Admission
// saturation (serve.ErrPoolSaturated) is retried separately and does
// not consume attempts — the body never ran, so re-submitting cannot
// double any effect, and the node still counts exactly once.
type Retry struct {
	MaxAttempts int
	Backoff     time.Duration
}

func (r Retry) maxAttempts() int {
	if r.MaxAttempts <= 1 {
		return 1
	}
	return r.MaxAttempts
}

// backoffFor returns the delay before attempt+1, exponential in the
// number of failures so far and capped at 32x the base.
func (r Retry) backoffFor(attempt int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	return r.Backoff << shift
}

// ErrUpstream is the typed cancellation cascaded to every transitive
// descendant of a terminally failed (or canceled) node. Node names the
// node whose terminal outcome triggered the cascade — the ROOT failure,
// not the immediate parent — and Cause carries its error, so a canceled
// leaf five hops downstream still reports which node doomed it and why.
type ErrUpstream struct {
	Node  string
	Cause error
}

func (e *ErrUpstream) Error() string {
	return fmt.Sprintf("graph: canceled by upstream node %q: %v", e.Node, e.Cause)
}

// Unwrap exposes the root failure to errors.Is/As.
func (e *ErrUpstream) Unwrap() error { return e.Cause }

// ErrNodeTimeout is the cancellation cause installed by a node's
// per-attempt WithTimeout deadline. A timed-out attempt is a FAILED
// attempt (retried while budget remains), distinguished by this
// sentinel from a graph-level cancellation, which is terminal.
var ErrNodeTimeout = errors.New("graph: node attempt timed out")

// errGraphReran rejects a second Run on the same Graph.
var errGraphReran = errors.New("graph: Run already called (graphs are single-shot)")

// Node is one vertex of a Graph: a session body plus the names of the
// upstream nodes whose outputs it consumes, under its own policy.
// Construct with Graph.Node; fields are immutable after that.
type Node struct {
	name    string
	fn      NodeFunc
	deps    []string
	retry   Retry
	timeout time.Duration
	runtime []core.Option  // per-node core options (mode override etc.)
	submit  []serve.Option // per-node submit-scope serve options
	future  *Future

	// run state, owned by the run scheduler (guarded by run.mu).
	state    NodeState
	waiting  int // unfulfilled input count
	attempts int
	verdict  serve.Verdict
	err      error
	out      any
	start    time.Time
	end      time.Time
	bodyRuns atomic.Int64 // body executions; exactly-once harness evidence
	down     []*Node      // consumers (reverse edges), built at Node()
}

// Name returns the node's graph-unique name.
func (n *Node) Name() string { return n.name }

// Deps returns a copy of the node's declared dependency names.
func (n *Node) Deps() []string { return append([]string(nil), n.deps...) }

// Future returns the node's output cell. It resolves when the node
// reaches its terminal state: fulfilled with the body's output on a
// clean verdict, failed with the node's error otherwise. Readable from
// anywhere — including other sessions — without touching this node's
// runtime.
func (n *Node) Future() *Future { return n.future }

// BodyRuns returns how many times the node's body has started
// executing. For a healthy graph this is exactly the attempt count of a
// node that ran and zero for a cascade-canceled node; the loadgen
// harness asserts both (the "no double-run" invariant).
func (n *Node) BodyRuns() int64 { return n.bodyRuns.Load() }

// NodeOption configures one node at declaration.
type NodeOption func(*Node)

// After declares the node's inputs: it consumes the outputs of the
// named nodes and is not submitted until every one has fulfilled.
// Dependencies must already be declared on the graph — declare-before-
// use is what makes every Graph acyclic by construction (an edge can
// only point backwards in declaration order, so no cycle can ever be
// expressed and Run needs no cycle check).
func After(deps ...string) NodeOption {
	return func(n *Node) { n.deps = append(n.deps, deps...) }
}

// WithRetry sets the node's retry policy (default: one attempt).
func WithRetry(r Retry) NodeOption {
	return func(n *Node) { n.retry = r }
}

// WithTimeout bounds each ATTEMPT of the node: the attempt's session
// context carries this deadline (cause ErrNodeTimeout), so an overrun
// cancels the session mid-flight and counts as a failed attempt —
// retried while the node's budget lasts, terminal otherwise.
func WithTimeout(d time.Duration) NodeOption {
	return func(n *Node) { n.timeout = d }
}

// WithMode overrides the node's verification mode — e.g. run a trusted
// bulk stage Unverified while the rest of the graph stays Full. Sugar
// for WithRuntime(core.WithMode(m)).
func WithMode(m core.Mode) NodeOption {
	return func(n *Node) { n.runtime = append(n.runtime, core.WithMode(m)) }
}

// WithRuntime appends core options to the node's session runtimes.
// They are passed at submit scope, so they land after (and override)
// the pool's base runtime options.
func WithRuntime(opts ...core.Option) NodeOption {
	return func(n *Node) { n.runtime = append(n.runtime, opts...) }
}

// WithSubmit appends submit-scope serve options (e.g. serve.WithTenant)
// to every attempt's Pool.Submit call — the graph layer adds policy on
// top of the unified serve.Option surface rather than forking it.
func WithSubmit(opts ...serve.Option) NodeOption {
	return func(n *Node) { n.submit = append(n.submit, opts...) }
}

// Graph is a DAG of dependent sessions. Build with New + Node (deps
// declare-before-use keep it acyclic by construction), then execute
// once with Run. A Graph is not safe for concurrent building, and Run
// may be called exactly once.
type Graph struct {
	name  string
	nodes map[string]*Node
	order []*Node // declaration order — a topological order by construction
	ran   atomic.Bool
}

// New creates an empty named graph. The name prefixes the session names
// of every node attempt ("name/node") in pool accounting and traces.
func New(name string) *Graph {
	if name == "" {
		name = "graph"
	}
	return &Graph{name: name, nodes: make(map[string]*Node)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Len returns the number of declared nodes.
func (g *Graph) Len() int { return len(g.order) }

// Node declares a node. The name must be graph-unique and non-empty, fn
// non-nil, and every dependency named by After must already be declared
// — forward or self references are rejected, which is precisely what
// guarantees the graph stays a DAG with no separate cycle check.
func (g *Graph) Node(name string, fn NodeFunc, opts ...NodeOption) (*Node, error) {
	if name == "" {
		return nil, errors.New("graph: empty node name")
	}
	if fn == nil {
		return nil, fmt.Errorf("graph: node %q has a nil body", name)
	}
	if _, dup := g.nodes[name]; dup {
		return nil, fmt.Errorf("graph: duplicate node %q", name)
	}
	n := &Node{name: name, fn: fn, future: newFuture(name), state: NodePending}
	for _, opt := range opts {
		if opt != nil {
			opt(n)
		}
	}
	seen := make(map[string]bool, len(n.deps))
	for _, dep := range n.deps {
		if dep == name {
			return nil, fmt.Errorf("graph: node %q depends on itself", name)
		}
		if seen[dep] {
			return nil, fmt.Errorf("graph: node %q lists dependency %q twice", name, dep)
		}
		seen[dep] = true
		up, ok := g.nodes[dep]
		if !ok {
			return nil, fmt.Errorf("graph: node %q depends on undeclared node %q (declare dependencies first)", name, dep)
		}
		up.down = append(up.down, n)
	}
	n.waiting = len(n.deps)
	g.nodes[name] = n
	g.order = append(g.order, n)
	return n, nil
}

// MustNode is Node, panicking on a declaration error — for statically
// shaped graphs (workload builders, tests) where an error is a bug.
func (g *Graph) MustNode(name string, fn NodeFunc, opts ...NodeOption) *Node {
	n, err := g.Node(name, fn, opts...)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns the declared nodes in declaration (topological) order.
func (g *Graph) Nodes() []*Node { return append([]*Node(nil), g.order...) }
