// Command tracecheck is the offline, independent verifier for binary
// traces recorded with core.TraceTo (or promisefuzz -record): it loads a
// trace, reconstructs the ownership and waits-for graphs by replaying
// every event, and re-derives the run's verdict without trusting the
// in-process detector.
//
// Checks (see internal/trace.Verify):
//
//   - every deadlock alarm must correspond to a real cycle in the
//     reconstructed waits-for graph at the alarm's sequence point, with
//     the cycle length matching the detector's report;
//   - every omitted-set alarm must blame a task that still owns
//     unfulfilled promises and must precede that task's task-end record;
//   - a terminated run must have unwound completely: every started task
//     ended, no task left blocked, every wake preceded by a fulfilment;
//   - gap records (collector overflow) demote the verdict to
//     best-effort.
//
// Usage:
//
//	tracecheck [-v] [-expect clean|deadlock|alarm|any] file...
//
// With -expect, the exit status also enforces the expected verdict:
// "clean" requires zero alarms, "deadlock" exactly one re-verified
// deadlock cycle, "alarm" at least one alarm. "-" reads stdin. Exit 0
// when every trace is consistent (and matches -expect), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "print every alarm and problem, plus per-trace detail")
	expect := flag.String("expect", "any", "required verdict: clean, deadlock, alarm, any")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-v] [-expect clean|deadlock|alarm|any] file...")
		os.Exit(2)
	}
	switch *expect {
	case "clean", "deadlock", "alarm", "any":
	default:
		fmt.Fprintf(os.Stderr, "unknown -expect %q\n", *expect)
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		if !check(path, *expect, *verbose) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path, expect string, verbose bool) bool {
	var evs []trace.Event
	var err error
	if path == "-" {
		evs, err = trace.ReadAll(os.Stdin)
	} else {
		evs, err = trace.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		return false
	}
	rep := trace.Verify(evs)
	fmt.Printf("%s: %s\n", path, rep.Summary())
	if verbose {
		if rep.Mode != "" {
			fmt.Printf("  config: mode=%s detector=%s tracking=%s\n", rep.Mode, rep.Detector, rep.Tracking)
		}
		for _, a := range rep.Alarms {
			status := ""
			if a.Class == trace.AlarmDeadlock {
				status = fmt.Sprintf(" [cycle len %d, verified=%v]", a.CycleLen, a.CycleVerified)
			}
			fmt.Printf("  alarm #%d%s: %s\n", a.Seq, status, a.Detail)
		}
		for _, p := range rep.Problems {
			fmt.Printf("  problem: %s\n", p)
		}
	} else {
		for _, p := range rep.Problems {
			fmt.Printf("  problem: %s\n", p)
		}
	}

	if !rep.Consistent() {
		return false
	}
	switch expect {
	case "clean":
		if !rep.Clean() {
			fmt.Printf("  EXPECTATION FAILED: wanted a clean run, got %d alarm(s)\n", len(rep.Alarms))
			return false
		}
	case "deadlock":
		if rep.Deadlocks != 1 {
			fmt.Printf("  EXPECTATION FAILED: wanted exactly one deadlock alarm, got %d\n", rep.Deadlocks)
			return false
		}
		for _, a := range rep.Alarms {
			if a.Class == trace.AlarmDeadlock && !a.CycleVerified {
				fmt.Println("  EXPECTATION FAILED: deadlock cycle did not re-verify")
				return false
			}
		}
	case "alarm":
		if len(rep.Alarms) == 0 {
			fmt.Println("  EXPECTATION FAILED: wanted at least one alarm, got none")
			return false
		}
	}
	return true
}
