package core

import "sync/atomic"

// closedGateChan is the channel every signalled gate resolves to: allocated
// once per process, closed immediately. Its address doubles as the
// "signalled" sentinel in gate.ch, so a gate that is signalled before any
// consumer blocks never allocates a channel at all.
var closedGateChan = func() *chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return &ch
}()

// gate is a lazily-allocated one-shot wakeup. It replaces the eagerly
// allocated `done chan struct{}` that promises and tasks used to carry:
// most promises in the paper's workloads (Conway, Heat, SmithWaterman) are
// fulfilled before anyone waits on them, so paying a channel allocation per
// promise buys nothing. With a gate, the channel exists only if a consumer
// actually has to block.
//
// Protocol, entirely on one atomic pointer:
//
//   - A consumer that must block installs a fresh channel with
//     CAS(nil, &ch) and receives on it (wait).
//   - The producer Swaps in the closed sentinel and closes whatever
//     channel the Swap displaced (signal).
//
// Because CAS and Swap on the same atomic are totally ordered, exactly one
// of the two sees the other: either the consumer's CAS lands first and the
// producer closes that channel, or the producer's Swap lands first and the
// consumer observes the sentinel (a closed channel) and never blocks.
// There is no window for a lost wakeup.
type gate struct {
	ch atomic.Pointer[chan struct{}]
}

// signal wakes every current and future waiter. Idempotent: once the
// sentinel is in place a waiter can never install a channel again (the CAS
// from nil fails forever), so a second signal finds the sentinel and does
// nothing. Note that a waiter whose wait() lands after the signal is
// admitted via the sentinel without ever installing a channel, so the
// displaced pointer says nothing about whether waiters exist — liveness
// tracking (task pooling's waited flag) must be kept outside the gate.
func (g *gate) signal() {
	if old := g.ch.Swap(closedGateChan); old != nil && old != closedGateChan {
		close(*old)
	}
}

// wait returns a channel that is closed when the gate is signalled,
// installing one if the gate has not been signalled yet. If the gate was
// already signalled this is a single atomic load returning the shared
// closed channel.
func (g *gate) wait() <-chan struct{} {
	for {
		if p := g.ch.Load(); p != nil {
			return *p
		}
		ch := make(chan struct{})
		if g.ch.CompareAndSwap(nil, &ch) {
			return ch
		}
	}
}

// signalled reports whether signal has run. Note the one-sidedness: false
// may be stale, true is definitive (Swap is the linearization point).
func (g *gate) signalled() bool { return g.ch.Load() == closedGateChan }

// reset returns the gate to its unsignalled state. Only for object reuse
// (task pooling) on gates no goroutine can still be watching.
func (g *gate) reset() { g.ch.Store(nil) }
