package front

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workloads"
)

func newTestFront(t *testing.T, extra ...serve.Option) *Front {
	t.Helper()
	opts := append([]serve.Option{
		serve.WithMaxSessions(4),
		serve.WithQueueDepth(32),
	}, extra...)
	f, err := New(Config{
		Addr: "127.0.0.1:0",
		Keys: map[string]string{"gold-key": "gold", "bronze-key": "bronze"},
		Serve: append(opts,
			serve.WithTenantWeight("gold", 3),
			serve.WithTenantWeight("bronze", 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFrontEndToEnd is the wire smoke test: handshake, remote submission
// of a clean workload and the Listing 1 deadlock, streamed verdicts with
// server-side timings, and trace bytes on request.
func TestFrontEndToEnd(t *testing.T) {
	f := newTestFront(t)
	defer f.Shutdown(context.Background())

	c, err := Dial(f.Addr(), "gold-key")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tenant() != "gold" {
		t.Fatalf("tenant = %q, want gold", c.Tenant())
	}

	clean, err := c.Submit(t.Context(), SubmitRequest{Workload: "Sieve", Scale: "small"})
	if err != nil {
		t.Fatalf("submit Sieve: %v", err)
	}
	dl, err := c.Submit(t.Context(), SubmitRequest{Workload: "Deadlock", Trace: true})
	if err != nil {
		t.Fatalf("submit Deadlock: %v", err)
	}

	if err := clean.Wait(); err != nil || clean.Verdict() != serve.VerdictClean {
		t.Fatalf("Sieve: err %v verdict %v", err, clean.Verdict())
	}
	if dl.Wait() == nil || dl.Verdict() != serve.VerdictDeadlock {
		t.Fatalf("Deadlock: err %v verdict %v", dl.Err(), dl.Verdict())
	}
	var re *RemoteError
	if !errors.As(dl.Err(), &re) || !strings.Contains(re.Msg, "deadlock") {
		t.Fatalf("remote error not reconstructed: %#v", dl.Err())
	}
	if len(dl.Trace()) == 0 {
		t.Fatal("requested trace bytes missing from verdict")
	}
	if clean.Tenant() != "gold" || clean.Name() != "Sieve" {
		t.Fatalf("handle identity: tenant %q name %q", clean.Tenant(), clean.Name())
	}

	// Both handles satisfy the shared interface the local pool's do.
	var h serve.SessionHandle = clean
	if h.Verdict() != serve.VerdictClean {
		t.Fatal("SessionHandle view disagrees")
	}
}

// TestFrontRejections covers the synchronous refusal paths: bad API key
// at handshake, unknown workload, and version skew.
func TestFrontRejections(t *testing.T) {
	f := newTestFront(t)
	defer f.Shutdown(context.Background())

	if _, err := Dial(f.Addr(), "wrong-key"); err == nil || !strings.Contains(err.Error(), "unknown API key") {
		t.Fatalf("bad key: err = %v", err)
	}

	c, err := Dial(f.Addr(), "gold-key")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Submit(t.Context(), SubmitRequest{Workload: "NoSuchThing"})
	if err == nil || !strings.Contains(err.Error(), RejectUnknownWorkload) {
		t.Fatalf("unknown workload: err = %v", err)
	}
}

// TestFrontDeadlineAdmissionOverWire drives the server's latency window
// warm through the wire, then checks an infeasible remote deadline is
// shed with an error errors.Is-matchable against
// serve.ErrDeadlineInfeasible — the same sentinel the local API uses —
// and counted in front_rejected_total{reason="deadline"}.
func TestFrontDeadlineAdmissionOverWire(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Install(reg)
	t.Cleanup(func() { obs.Install(nil) })

	slow := func(root *core.Task) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	f, err := New(Config{
		Addr:     "127.0.0.1:0",
		Keys:     map[string]string{"k": "gold"},
		Registry: Registry{"Slow": func(workloads.Scale) core.TaskFunc { return slow }},
		Serve:    []serve.Option{serve.WithMaxSessions(2), serve.WithDeadlineAdmission(true)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())

	c, err := Dial(f.Addr(), "k")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		s, err := c.Submit(t.Context(), SubmitRequest{Workload: "Slow"})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}
	_, err = c.Submit(t.Context(), SubmitRequest{Workload: "Slow", Deadline: time.Millisecond})
	if !errors.Is(err, serve.ErrDeadlineInfeasible) {
		t.Fatalf("infeasible remote deadline admitted: %v", err)
	}
	// A roomy deadline still goes through.
	s, err := c.Submit(t.Context(), SubmitRequest{Workload: "Slow", Deadline: 10 * time.Second})
	if err != nil {
		t.Fatalf("roomy deadline shed: %v", err)
	}
	if s.Wait() != nil {
		t.Fatal(s.Err())
	}

	snap := reg.Snapshot()
	if got := snap.Vectors["front_rejected_total"]["reason=deadline"]; got != 1 {
		t.Fatalf("front_rejected_total{reason=deadline} = %d, want 1 (vec %v)",
			got, snap.Vectors["front_rejected_total"])
	}
	if st := f.Pool().Stats(); st.RejectedDeadline != 1 {
		t.Fatalf("pool RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
}

// TestFrontCancelOverWire: a client cancel aborts a running remote
// session, which still delivers a verdict — canceled.
func TestFrontCancelOverWire(t *testing.T) {
	hold := make(chan struct{})
	defer close(hold)
	// Blocks until cancelled: the setter task parks on a channel the test
	// never closes, but bails out through its task context on
	// cancellation, so the session unwinds instead of deadlocking.
	blocked := func(root *core.Task) error {
		p := core.NewPromise[int](root)
		if _, err := root.Async(func(t2 *core.Task) error {
			select {
			case <-hold:
				return p.Set(t2, 1)
			case <-t2.Context().Done():
				return t2.Context().Err()
			}
		}, p); err != nil {
			return err
		}
		_, err := p.Get(root)
		return err
	}
	f, err := New(Config{
		Addr:     "127.0.0.1:0",
		Keys:     map[string]string{"k": "t"},
		Registry: Registry{"Block": func(workloads.Scale) core.TaskFunc { return blocked }},
		Serve:    []serve.Option{serve.WithMaxSessions(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())

	c, err := Dial(f.Addr(), "k")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Submit(t.Context(), SubmitRequest{Workload: "Block"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(s); err != nil {
		t.Fatal(err)
	}
	if s.Wait() == nil || s.Verdict() != serve.VerdictCanceled {
		t.Fatalf("canceled session: err %v verdict %v", s.Err(), s.Verdict())
	}
}

// TestFrontGracefulDrainUnderLoad is the drain acceptance test: shut the
// front down while remote submitters are still active and check the
// contract — every accepted session gets a terminal verdict, submissions
// during the drain are rejected with the draining reason (mapped to
// serve.ErrPoolClosed client-side), and the front leaks no goroutines.
func TestFrontGracefulDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	f := newTestFront(t)

	var clients []*Client
	for _, key := range []string{"gold-key", "bronze-key"} {
		c, err := Dial(f.Addr(), key)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	var (
		mu       sync.Mutex
		accepted []*RemoteSession
		drainRej int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := c.Submit(context.Background(), SubmitRequest{Workload: "Sieve", Scale: "small"})
				mu.Lock()
				switch {
				case err == nil:
					accepted = append(accepted, s)
				case errors.Is(err, serve.ErrPoolClosed):
					drainRej++
				case errors.Is(err, serve.ErrPoolSaturated):
				default:
					t.Errorf("unexpected submit error: %v", err)
				}
				mu.Unlock()
			}
		}(c)
	}

	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not finish inside its deadline: %v", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no sessions accepted before drain")
	}
	verdicts := map[serve.Verdict]int{}
	for _, s := range accepted {
		select {
		case <-s.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("accepted session %d has no terminal verdict after drain", s.ID())
		}
		verdicts[s.Verdict()]++
	}
	if verdicts[serve.VerdictDeadlock] != 0 || verdicts[serve.VerdictPolicy] != 0 || verdicts[serve.VerdictFailed] != 0 {
		t.Fatalf("false verdicts during drain: %v", verdicts)
	}
	t.Logf("accepted %d (verdicts %v), %d drain rejections", len(accepted), verdicts, drainRej)

	for _, c := range clients {
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked through Front.Shutdown: %d, baseline %d", runtime.NumGoroutine(), before)
}

// TestFrontWeightedFairnessOverWire backlogs two remote tenants with
// 3:1 weights through one slot and checks completed throughput tracks
// the weights while both stay backlogged.
func TestFrontWeightedFairnessOverWire(t *testing.T) {
	gate := make(chan struct{})
	gated := func(root *core.Task) error {
		<-gate
		return nil
	}
	reg := DefaultRegistry()
	reg["Gated"] = func(workloads.Scale) core.TaskFunc { return gated }
	f, err := New(Config{
		Addr:     "127.0.0.1:0",
		Keys:     map[string]string{"gold-key": "gold", "bronze-key": "bronze"},
		Registry: reg,
		Serve: []serve.Option{
			serve.WithMaxSessions(1),
			serve.WithQueueDepth(32),
			serve.WithTenantWeight("gold", 3),
			serve.WithTenantWeight("bronze", 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())

	gold, err := Dial(f.Addr(), "gold-key")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := Dial(f.Addr(), "bronze-key")
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	// Occupy the slot, then backlog both tenants.
	blocker, err := gold.Submit(t.Context(), SubmitRequest{Workload: "Gated"})
	if err != nil {
		t.Fatal(err)
	}
	var sessions []*RemoteSession
	for i := 0; i < 12; i++ {
		s, err := gold.Submit(t.Context(), SubmitRequest{Workload: "Gated"})
		if err != nil {
			t.Fatalf("gold %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	for i := 0; i < 12; i++ {
		s, err := bronze.Submit(t.Context(), SubmitRequest{Workload: "Gated"})
		if err != nil {
			t.Fatalf("bronze %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	close(gate)
	blocker.Wait()
	// The WDRR admission ORDER is pinned deterministically by the
	// serve-level TestPoolWDRRAdmissionOrder; over the wire, verdict
	// arrival order across two connections is not observable without
	// racing clocks, so this test asserts the end-to-end plumbing: every
	// backlogged session of both tenants completes cleanly with its
	// tenant attribution intact.
	byTenant := map[string]int{}
	for _, s := range sessions {
		if err := s.Wait(); err != nil {
			t.Fatalf("session %s/%d: %v", s.Tenant(), s.ID(), err)
		}
		byTenant[s.Tenant()]++
	}
	if byTenant["gold"] != 12 || byTenant["bronze"] != 12 {
		t.Fatalf("per-tenant completion %v, want 12/12", byTenant)
	}
}
