package front

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// frameBytes builds a raw frame: length prefix, type byte, body.
func frameBytes(typ byte, body []byte) []byte {
	buf := make([]byte, 4+1+len(body))
	binary.BigEndian.PutUint32(buf, uint32(1+len(body)))
	buf[4] = typ
	copy(buf[5:], body)
	return buf
}

// TestReadFrameMalformed is the decode table: every malformed input a
// peer can produce must map to its typed sentinel — never a panic, an
// allocation of the advertised length, or a hang.
func TestReadFrameMalformed(t *testing.T) {
	hdr := func(n uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], n)
		return b[:]
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"truncated header", []byte{0, 0}, ErrFrameTruncated},
		{"zero length", hdr(0), ErrFrameOversized},
		// The cap bounds the LENGTH PREFIX (type byte + body) at 1 MiB:
		// maxFrameBody exactly is the largest legal frame; one past it is
		// refused before the body is read or allocated.
		{"one past the 1 MiB cap", hdr(maxFrameBody + 1), ErrFrameOversized},
		{"max uint32 length", hdr(^uint32(0)), ErrFrameOversized},
		{"truncated body", append(hdr(10), frameSubmit, 'x'), ErrFrameTruncated},
		{"type byte only, body missing", append(hdr(5), frameVerdict), ErrFrameTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestReadFrameCapBoundary pins both sides of the 1 MiB cap: a frame
// whose length prefix is exactly maxFrameBody decodes, one byte more is
// ErrFrameOversized (covered above).
func TestReadFrameCapBoundary(t *testing.T) {
	body := make([]byte, maxFrameBody-1) // + 1 type byte = exactly the cap
	typ, got, err := readFrame(bytes.NewReader(frameBytes(frameVerdict, body)))
	if err != nil {
		t.Fatalf("frame at exactly the cap refused: %v", err)
	}
	if typ != frameVerdict || len(got) != len(body) {
		t.Fatalf("typ %d body %d, want %d/%d", typ, len(got), frameVerdict, len(body))
	}
}

// TestDecodeCorruptBody: a well-framed body that is not the frame's
// JSON schema is ErrFrameCorrupt.
func TestDecodeCorruptBody(t *testing.T) {
	for _, body := range [][]byte{[]byte("not json"), []byte("{\"id\":"), {0xff, 0xfe}} {
		var msg verdictMsg
		if err := decode(frameVerdict, body, &msg); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("decode(%q) = %v, want ErrFrameCorrupt", body, err)
		}
	}
	// Unknown JSON fields are NOT corruption: that is how the schema
	// versions forward.
	var msg acceptMsg
	if err := decode(frameAccept, []byte(`{"id":3,"future_field":true}`), &msg); err != nil || msg.ID != 3 {
		t.Fatalf("forward-compatible body refused: %v", err)
	}
}

// TestGarbageHandshakeBytes dials a real server socket, writes garbage
// instead of a hello frame, and requires the server to cut the conn
// with no panic and no hang — the decoded "length" of random bytes is
// usually absurd, which is exactly what ErrFrameOversized is for.
func TestGarbageHandshakeBytes(t *testing.T) {
	f := newTestFront(t)
	defer f.Shutdown(context.Background())

	for _, garbage := range [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), // a lost HTTP client
		{0xff, 0xff, 0xff, 0xff, 0x00},              // max length prefix
		{0x00, 0x00, 0x00, 0x00},                    // zero length prefix
	} {
		nc, err := net.Dial("tcp", f.Addr())
		if err != nil {
			t.Fatal(err)
		}
		nc.Write(garbage)
		// The server must close; our read unblocks with EOF/reset well
		// inside the handshake timeout.
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 64)
		if _, err := nc.Read(buf); err == nil {
			// A helloAck refusal would also be acceptable — but garbage
			// cannot decode as a hello, so the server answers nothing.
			t.Fatalf("server replied to garbage %q", garbage)
		}
		nc.Close()
	}
}

// FuzzReadFrame: arbitrary bytes through the frame reader must produce
// a frame or a typed error — never a panic — and a frame that decodes
// must re-encode to the same wire bytes it came from (round-trip
// stability of the framing, not the JSON).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameBytes(frameSubmit, []byte(`{"id":1,"workload":"Sieve"}`)))
	f.Add(frameBytes(framePing, []byte(`{"seq":9}`)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			switch {
			case errors.Is(err, io.EOF),
				errors.Is(err, ErrFrameTruncated),
				errors.Is(err, ErrFrameOversized):
			default:
				t.Fatalf("untyped readFrame error: %v", err)
			}
			return
		}
		round := frameBytes(typ, body)
		if !bytes.Equal(round, data[:len(round)]) {
			t.Fatalf("frame did not round-trip: %q -> %q", data[:len(round)], round)
		}
	})
}

// FuzzDecodeSubmit: arbitrary bodies through the submit schema decode
// to a typed error or a value, never a panic (json.Unmarshal's promise,
// pinned here because handleSubmit trusts it with network input).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte(`{"id":1,"workload":"Sieve","deadline_ms":5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(strings.Repeat("[", 1024)))
	f.Fuzz(func(t *testing.T, body []byte) {
		var msg submitMsg
		if err := decode(frameSubmit, body, &msg); err != nil && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
