// Package front is the network serving front-end: a compact framed-TCP
// protocol (and matching Go client) that exposes the in-process serving
// pool — session submission by registered workload name, streamed
// verdicts, deadline-aware admission, per-tenant weighted fairness — to
// remote callers, keyed by per-tenant API keys.
//
// The wire format favors debuggability over density: every frame is a
// 4-byte big-endian length, one frame-type byte, and a JSON body. JSON
// keeps the protocol greppable in a packet capture and versionable by
// field addition; the only hot number on this path is sessions per
// second, which is control-plane scale, so framing overhead is noise
// next to session execution. The version handshake (hello/helloAck)
// pins the schema: a server refuses a client whose major version it
// does not speak, instead of misparsing it.
//
// Frame flow, client's view:
//
//	C→S  hello{version, key}            once, first frame on the conn
//	S→C  helloAck{version, tenant}      or errors and closes
//	C→S  submit{id, workload, ...}      any time after the ack
//	S→C  accept{id} | reject{id, ...}   synchronous answer, in order
//	S→C  verdict{id, ...}               when the session completes
//	C→S  cancel{id}                     best-effort, any time
//	S→C  goaway{reason}                 server is draining; no new submits
//	*→*  ping{seq} / pong{seq}          keepalive, either direction
//
// The submit id is chosen by the client and scopes the conversation: all
// server frames about a session carry it back. Accept/reject are sent
// from the read loop before the next submit is read, so they arrive in
// submission order; verdicts arrive in completion order, interleaved.
//
// Ping/pong is the liveness layer: either side may send a ping at any
// time after the handshake and the peer answers with a pong echoing the
// sequence number. The client's heartbeat loop uses it to detect a dead
// or wedged server (see DialOptions.Heartbeat); the server's idle
// reaper treats ANY inbound frame — pings included — as proof of life,
// so a heartbeating client survives an idle timeout and a silent one
// does not.
package front

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ProtocolVersion is the wire schema version sent in the hello
// handshake. Servers refuse clients with a different major version.
const ProtocolVersion = 1

// maxFrameBody bounds a frame's decoded length: nothing in the schema
// legitimately approaches it, so anything larger is a corrupt stream or
// a hostile peer, and the conn is cut rather than buffered.
const maxFrameBody = 1 << 20

// Frame types.
const (
	frameHello    byte = 1
	frameHelloAck byte = 2
	frameSubmit   byte = 3
	frameAccept   byte = 4
	frameReject   byte = 5
	frameVerdict  byte = 6
	frameCancel   byte = 7
	frameGoaway   byte = 8
	framePing     byte = 9
	framePong     byte = 10
)

// Typed wire-level errors. Every malformed input a peer can send — a
// length prefix past the cap, a stream that ends inside a frame, a body
// that is not the advertised JSON, a frame type this version does not
// speak — maps to exactly one of these sentinels, so the supervision
// and retry layers classify transport failures with errors.Is instead
// of string matching, and fuzzing can assert "typed error, never a
// panic or a hang".
var (
	// ErrFrameOversized: the length prefix exceeds maxFrameBody (or is
	// zero). The conn is cut without reading the body — a hostile length
	// must not make the reader allocate or block for it.
	ErrFrameOversized = errors.New("front: frame length out of range")
	// ErrFrameTruncated: the stream ended inside a frame (header or
	// body). Distinct from a clean EOF between frames.
	ErrFrameTruncated = errors.New("front: truncated frame")
	// ErrFrameCorrupt: the frame body failed to decode as the frame
	// type's schema.
	ErrFrameCorrupt = errors.New("front: corrupt frame body")
	// ErrUnknownFrame: a frame type this protocol version does not
	// speak.
	ErrUnknownFrame = errors.New("front: unknown frame type")
	// ErrWriteTimeout: a frame write missed its deadline — the peer has
	// stalled (dead TCP window, wedged reader). The connection is
	// unusable after it: the frame may be partially on the wire.
	ErrWriteTimeout = errors.New("front: frame write timed out")
)

// helloMsg opens a connection: protocol version plus the tenant API key.
type helloMsg struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
}

// helloAckMsg accepts a connection and names the tenant the key mapped
// to; a non-empty Err refuses it (bad key, version skew) and the server
// closes the conn after sending.
type helloAckMsg struct {
	Version int    `json:"version"`
	Tenant  string `json:"tenant,omitempty"`
	Err     string `json:"err,omitempty"`
}

// submitMsg asks for one session of a registered workload. DeadlineMs,
// when positive, is a relative deadline the server turns into the
// session ctx deadline (relative, not absolute, so clock skew between
// client and server does not corrupt the budget). Trace requests the
// session's retained event log back with the verdict.
type submitMsg struct {
	ID         uint64 `json:"id"`
	Workload   string `json:"workload"`
	Scale      string `json:"scale,omitempty"`
	DeadlineMs int64  `json:"deadline_ms,omitempty"`
	Trace      bool   `json:"trace,omitempty"`
}

// acceptMsg acknowledges admission: the session is queued or running.
type acceptMsg struct {
	ID uint64 `json:"id"`
}

// Reject reasons carried in rejectMsg.Reason.
const (
	RejectDeadline        = "deadline"         // deadline-aware admission shed it
	RejectSaturated       = "saturated"        // tenant queue full
	RejectDraining        = "draining"         // server is shutting down
	RejectUnknownWorkload = "unknown_workload" // no such registry entry
)

// rejectMsg refuses a submit synchronously.
type rejectMsg struct {
	ID     uint64 `json:"id"`
	Reason string `json:"reason"`
	Err    string `json:"err,omitempty"`
}

// verdictMsg reports a completed session.
type verdictMsg struct {
	ID         uint64 `json:"id"`
	Verdict    string `json:"verdict"`
	Err        string `json:"err,omitempty"`
	QueueMs    int64  `json:"queue_ms"`
	DurationMs int64  `json:"duration_ms"`
	Trace      []byte `json:"trace,omitempty"`
}

// cancelMsg asks the server to cancel a submitted session. Best-effort:
// the session still completes with a verdict (normally "canceled").
type cancelMsg struct {
	ID uint64 `json:"id"`
}

// goawayMsg tells the client the server is draining: submits after it
// are rejected, verdicts for in-flight sessions still arrive.
type goawayMsg struct {
	Reason string `json:"reason,omitempty"`
}

// pingMsg/pongMsg carry the keepalive sequence number; a pong echoes
// the ping's Seq so the sender can count outstanding (unanswered)
// heartbeats without matching timers to frames.
type pingMsg struct {
	Seq uint64 `json:"seq"`
}

// frameWriter serializes frames onto one conn. Writes come from the read
// loop (accept/reject/pong, in order) and from per-session verdict
// waiters (completion order), so every write takes the mutex — a frame
// is never interleaved inside another.
//
// When nc and timeout are set, every send arms a write deadline: a peer
// that has stopped draining its socket fails the write with
// ErrWriteTimeout after timeout instead of wedging the sender forever.
// The deadline covers the whole frame under the mutex, so one stalled
// peer delays other writers on the SAME conn at most timeout — and the
// conn is declared dead at the first timeout, never retried (the frame
// boundary is gone).
type frameWriter struct {
	mu      sync.Mutex
	w       io.Writer
	nc      net.Conn      // optional: write-deadline support
	timeout time.Duration // 0 = no write deadline
}

func (fw *frameWriter) send(typ byte, msg any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("front: marshal frame %d: %w", typ, err)
	}
	buf := make([]byte, 4+1+len(body))
	binary.BigEndian.PutUint32(buf, uint32(1+len(body)))
	buf[4] = typ
	copy(buf[5:], body)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.nc != nil && fw.timeout > 0 {
		fw.nc.SetWriteDeadline(time.Now().Add(fw.timeout))
	}
	_, err = fw.w.Write(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return fmt.Errorf("%w after %v (frame %d): %v", ErrWriteTimeout, fw.timeout, typ, err)
		}
		return err
	}
	return nil
}

// readFrame reads one length-prefixed frame. The caller owns read
// deadlines on the underlying conn. Malformed input maps to the typed
// sentinels above; a clean EOF between frames passes through as io.EOF.
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: stream ended inside the header", ErrFrameTruncated)
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBody {
		return 0, nil, fmt.Errorf("%w: length %d (cap %d)", ErrFrameOversized, n, maxFrameBody)
	}
	buf := make([]byte, n)
	if got, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: %d of %d body bytes: %v", ErrFrameTruncated, got, n, err)
	}
	return buf[0], buf[1:], nil
}

// decode unmarshals a frame body, wrapping failures in ErrFrameCorrupt
// with the frame type.
func decode(typ byte, body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("%w: frame %d: %v", ErrFrameCorrupt, typ, err)
	}
	return nil
}
