package collections

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

func TestChannelListing4(t *testing.T) {
	// The exact program of Listing 4: send 1, move the whole channel to a
	// child which sends 2 and stops, then receive 1 and 2.
	for _, mode := range testutil.AllModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := core.NewRuntime(core.WithMode(mode))
			testutil.MustSucceed(t, rt, func(tk *core.Task) error {
				ch := NewChannel[int](tk)
				if err := ch.Send(tk, 1); err != nil {
					return err
				}
				if _, err := tk.Async(func(c *core.Task) error {
					if err := ch.Send(c, 2); err != nil {
						return err
					}
					return ch.Close(c)
					// No remaining promises.
				}, ch); err != nil {
					return err
				}
				// No remaining promises in the parent either.
				if v, ok, err := ch.Recv(tk); err != nil || !ok || v != 1 {
					return fmt.Errorf("first recv = %v %v %v", v, ok, err)
				}
				if v, ok, err := ch.Recv(tk); err != nil || !ok || v != 2 {
					return fmt.Errorf("second recv = %v %v %v", v, ok, err)
				}
				if _, ok, err := ch.Recv(tk); err != nil || ok {
					return fmt.Errorf("recv after close: ok=%v err=%v", ok, err)
				}
				return nil
			})
		})
	}
}

func TestChannelOrdering(t *testing.T) {
	rt := core.NewRuntime(core.WithMode(core.Full))
	const n = 500
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		if _, err := tk.Async(func(c *core.Task) error {
			for i := 0; i < n; i++ {
				if err := ch.Send(c, i); err != nil {
					return err
				}
			}
			return ch.Close(c)
		}, ch); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v, ok, err := ch.Recv(tk)
			if err != nil || !ok || v != i {
				return fmt.Errorf("recv %d = %v %v %v", i, v, ok, err)
			}
		}
		if _, ok, _ := ch.Recv(tk); ok {
			return errors.New("stream did not end")
		}
		return nil
	})
}

func TestChannelRecvBlocksUntilSend(t *testing.T) {
	rt := core.NewRuntime(core.WithMode(core.Full))
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		ch := NewChannel[string](tk)
		got := core.NewPromise[string](tk)
		if _, err := tk.Async(func(c *core.Task) error {
			v, ok, err := ch.Recv(c)
			if err != nil || !ok {
				return fmt.Errorf("recv: %v %v", ok, err)
			}
			return got.Set(c, v)
		}, got); err != nil {
			return err
		}
		if err := ch.Send(tk, "ping"); err != nil {
			return err
		}
		v, err := got.Get(tk)
		if err != nil {
			return err
		}
		if v != "ping" {
			return fmt.Errorf("v = %q", v)
		}
		return ch.Close(tk)
	})
}

func TestChannelSendByNonOwnerFails(t *testing.T) {
	rt := core.NewRuntime(core.WithMode(core.Ownership))
	err := testutil.Run(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		// Move the sending end away; the parent then tries to send.
		if _, err := tk.Async(func(c *core.Task) error {
			return ch.Close(c)
		}, ch); err != nil {
			return err
		}
		e := ch.Send(tk, 1)
		var oe *core.OwnershipError
		if !errors.As(e, &oe) {
			return fmt.Errorf("send by non-owner = %v, want OwnershipError", e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChannelAbandonedSenderIsOmittedSet(t *testing.T) {
	// A task holding the sending end that terminates without Close leaks
	// the producer promise; the receiver is unblocked by the cascade.
	rt := core.NewRuntime(core.WithMode(core.Ownership))
	err := testutil.Run(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		if _, err := tk.AsyncNamed("sender", func(c *core.Task) error {
			return nil // forgot to Close (or Send)
		}, ch); err != nil {
			return err
		}
		_, _, e := ch.Recv(tk)
		var bp *core.BrokenPromiseError
		if !errors.As(e, &bp) {
			return fmt.Errorf("recv = %v, want BrokenPromiseError", e)
		}
		if bp.TaskName != "sender" {
			return fmt.Errorf("blame = %q", bp.TaskName)
		}
		return nil
	})
	var om *core.OmittedSetError
	if !errors.As(err, &om) {
		t.Fatalf("no omitted-set report: %v", err)
	}
}

func TestChannelMovesThroughGenerations(t *testing.T) {
	// The sending end hops through a chain of tasks, each contributing one
	// value — the PromiseCollection abstraction at work.
	rt := core.NewRuntime(core.WithMode(core.Full))
	const hops = 10
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		var spawn func(t *core.Task, i int) error
		spawn = func(t *core.Task, i int) error {
			if i == hops {
				return ch.Close(t)
			}
			if err := ch.Send(t, i); err != nil {
				return err
			}
			_, err := t.Async(func(c *core.Task) error { return spawn(c, i+1) }, ch)
			return err
		}
		if _, err := tk.Async(func(c *core.Task) error { return spawn(c, 0) }, ch); err != nil {
			return err
		}
		for i := 0; i < hops; i++ {
			v, ok, err := ch.Recv(tk)
			if err != nil || !ok || v != i {
				return fmt.Errorf("recv %d = %v %v %v", i, v, ok, err)
			}
		}
		_, ok, err := ch.Recv(tk)
		if err != nil || ok {
			return fmt.Errorf("tail: ok=%v err=%v", ok, err)
		}
		return nil
	})
}

func TestChannelDeadlockDetected(t *testing.T) {
	// Two tasks each Recv from the channel the other must Send on: the
	// detector sees through the channel abstraction because channels are
	// just promises.
	rt := core.NewRuntime(core.WithMode(core.Full))
	err := testutil.Run(t, rt, func(tk *core.Task) error {
		ab := NewChannelNamed[int](tk, "ab")
		ba := NewChannelNamed[int](tk, "ba")
		if _, err := tk.AsyncNamed("A", func(a *core.Task) error {
			if _, _, err := ba.Recv(a); err != nil {
				return err
			}
			return ab.Send(a, 1)
		}, ab); err != nil {
			return err
		}
		if _, err := tk.AsyncNamed("B", func(b *core.Task) error {
			if _, _, err := ab.Recv(b); err != nil {
				return err
			}
			return ba.Send(b, 1)
		}, ba); err != nil {
			return err
		}
		return nil
	})
	var dl *core.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock through channels", err)
	}
}

func TestChannelSendAfterCloseFails(t *testing.T) {
	rt := core.NewRuntime(core.WithMode(core.Full))
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		if err := ch.Close(tk); err != nil {
			return err
		}
		if err := ch.Send(tk, 1); err == nil {
			return errors.New("send after close succeeded")
		}
		return nil
	})
}

func TestChannelZeroValues(t *testing.T) {
	rt := core.NewRuntime(core.WithMode(core.Full))
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		ch := NewChannel[int](tk)
		if err := ch.Send(tk, 0); err != nil {
			return err
		}
		v, ok, err := ch.Recv(tk)
		if err != nil || !ok || v != 0 {
			return fmt.Errorf("zero send lost: %v %v %v", v, ok, err)
		}
		return ch.Close(tk)
	})
}
