// Package serve is the multi-session serving layer: it runs many
// concurrent, mutually isolated promise programs ("sessions") over one
// shared elastic scheduler, with admission control in front and
// per-session verdicts behind.
//
// The paper's runtime verifies one program; a server verifies thousands at
// once. Giving every session its own sched.Elastic would multiply worker
// and cleaner goroutines by the session count and defeat worker reuse
// across sessions, so the Pool owns a single Elastic and injects a
// per-session accounting view of it (sched.Tenant) into each session's
// core.Runtime via the executor seam (core.WithExecutor). Isolation is
// preserved because everything the detector and the ownership policy
// touch — task registries, promise owners, error lists, event collectors —
// lives in the per-session Runtime; the scheduler only donates goroutines,
// and the paper's §6.3 unbounded-growth requirement holds globally, so one
// session's blocked tasks can never starve another's.
//
// Admission is two-stage: at most MaxSessions sessions run concurrently,
// at most QueueDepth more wait for a slot, and anything beyond that is
// rejected synchronously with ErrPoolSaturated — the caller, not the pool,
// owns retry policy. Every Submit carries a context covering the whole
// session: the admission wait (a queued session whose ctx ends aborts
// without running) and the execution (a running session is cancelled
// through the runtime's structured-cancellation scope); either way it
// completes with VerdictCanceled. Shutdown is ordered: Close stops
// admission, promptly fails still-queued sessions with ErrPoolClosed,
// drains running sessions, then closes the shared scheduler, which
// itself blocks until every worker and the cleaner goroutine have exited.
// After Close returns the pool has provably released every goroutine it
// created (the race tests assert this against runtime.NumGoroutine).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/obs"
	"repro/internal/sched"
)

// ErrPoolSaturated is returned by Submit when MaxSessions sessions are
// running and the wait queue is full.
var ErrPoolSaturated = errors.New("serve: pool saturated")

// ErrPoolClosed is returned by Submit after Close has been called.
var ErrPoolClosed = errors.New("serve: pool closed")

// Config configures a Pool. The zero value is usable: 8 concurrent
// sessions, no queue, default scheduler idle timeout, Full verification.
type Config struct {
	// MaxSessions is the number of sessions allowed to run concurrently.
	// <= 0 selects 8.
	MaxSessions int
	// QueueDepth is how many admitted-but-waiting sessions may be parked
	// behind the running ones before Submit starts rejecting. 0 means
	// queue nothing: saturate-and-reject.
	QueueDepth int
	// IdleTimeout is the shared scheduler's worker idle timeout
	// (sched.NewElastic); zero selects that constructor's default.
	IdleTimeout time.Duration
	// Runtime is the base option set applied to every session's runtime,
	// before per-Submit options. The pool always appends its own executor
	// injection last, so a WithExecutor here or at Submit is overridden —
	// sessions run on the shared pool by construction.
	Runtime []core.Option
}

// Pool runs sessions. Create with NewPool, submit with Submit, shut down
// with Close.
type Pool struct {
	cfg  Config
	exec *sched.Elastic

	// slots is the running-session semaphore: buffer size MaxSessions.
	slots chan struct{}

	// closeCh is closed by the first Close, BEFORE the drain: queued
	// sessions blocked waiting for a slot select on it and abort promptly
	// with ErrPoolClosed instead of riding out the whole drain.
	closeCh chan struct{}

	mu      sync.Mutex
	closed  bool
	waiting int // sessions admitted to the queue, not yet holding a slot
	drain   sync.WaitGroup

	nextID    atomic.Uint64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	inflight  atomic.Int64
	peak      atomic.Int64

	verdicts [verdictCount]atomic.Int64
	tasksRun atomic.Int64
	dropped  atomic.Int64

	// Windowed latency recorders behind Pool.Observe: queue wait
	// (admission latency) and execution time of recently completed
	// sessions. Always present — Observe works with no registry
	// installed — but when one IS installed at NewPool time the windows
	// are the registry's named recorders, so the scrape endpoint and
	// Observe read the same buckets.
	queueWait *obs.Window
	execLat   *obs.Window
}

// NewPool creates a serving pool with its own shared scheduler.
func NewPool(cfg Config) *Pool {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	p := &Pool{
		cfg:     cfg,
		exec:    sched.NewElastic(cfg.IdleTimeout),
		slots:   make(chan struct{}, cfg.MaxSessions),
		closeCh: make(chan struct{}),
	}
	if reg := obs.Installed(); reg != nil {
		// Geometry args are only honored by the first creator; a second
		// pool shares the registered recorders.
		p.queueWait = reg.Window("serve_queue_wait_seconds", 0, 0)
		p.execLat = reg.Window("serve_exec_latency_seconds", 0, 0)
	} else {
		p.queueWait = obs.NewWindow(0, 0)
		p.execLat = obs.NewWindow(0, 0)
	}
	return p
}

// Submit starts (or queues) one session running main and returns its
// handle immediately. ctx is the session's cancellation scope and covers
// its whole life: a session still waiting in the admission queue when ctx
// ends aborts without ever running, and a running session is cancelled
// through core.Runtime.RunContext (structured cancellation: its blocked
// waits abort, the task tree unwinds cooperatively). Either way the
// session completes with VerdictCanceled. A nil ctx means no caller-side
// cancellation (context.Background).
//
// The session's runtime is built from the pool's base options
// (Config.Runtime), then opts — so a later option overrides an earlier
// one and every base option can be overridden per session — and finally
// the pool's shared-executor injection. Submit never blocks on session
// execution: if a slot is free the session starts right away; if the
// queue has room it waits for a slot in the background; otherwise Submit
// fails fast with ErrPoolSaturated.
func (p *Pool) Submit(ctx context.Context, name string, main core.TaskFunc, opts ...core.Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		// Dead on arrival: fail synchronously, like a closed pool.
		p.reject()
		return nil, context.Cause(ctx)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.reject()
		return nil, ErrPoolClosed
	}
	queued := false
	select {
	case p.slots <- struct{}{}: // slot free: run immediately
	default:
		if p.waiting >= p.cfg.QueueDepth {
			p.mu.Unlock()
			p.reject()
			return nil, ErrPoolSaturated
		}
		p.waiting++
		queued = true
	}
	p.drain.Add(1)
	p.mu.Unlock()

	id := p.nextID.Add(1)
	// The metrics tenant label is the caller-provided name only:
	// generated per-session names would mint one series per session.
	tenantLabel := name
	if tenantLabel == "" {
		tenantLabel = "default"
	}
	if name == "" {
		name = fmt.Sprintf("session-%d", id)
	}
	tenant := p.exec.Tenant(name)
	s := &Session{
		pool:     p,
		id:       id,
		name:     name,
		tlabel:   tenantLabel,
		ctx:      ctx,
		tenant:   tenant,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
		runtimeOpts: append(append(append([]core.Option{}, p.cfg.Runtime...), opts...),
			core.WithExecutor(tenant.Execute),
			core.WithBatchExecutor(tenant.ExecuteBatch)),
	}
	p.submitted.Add(1)
	if m := pmet(); m != nil {
		m.submitted.Inc()
	}
	go p.runSession(s, main, queued)
	return s, nil
}

// reject accounts a synchronous Submit rejection (dead ctx, closed,
// saturated).
func (p *Pool) reject() {
	p.rejected.Add(1)
	if m := pmet(); m != nil {
		m.rejected.Inc()
	}
}

// runSession is the session's supervising goroutine: acquire a slot if the
// session was queued, build the isolated runtime, run the program, record
// the verdict, release the slot. A queued session stops waiting the
// moment its ctx ends or the pool starts closing — it then completes with
// VerdictCanceled without ever running.
func (p *Pool) runSession(s *Session, main core.TaskFunc, queued bool) {
	defer p.drain.Done()
	if queued {
		var aborted error
		// Check the close signal on its own first: if Close already ran,
		// abort deterministically even when a slot happens to be free.
		select {
		case <-p.closeCh:
			aborted = ErrPoolClosed
		default:
			select {
			case p.slots <- struct{}{}: // blocks until a running session releases
				// Won a slot — but if Close landed concurrently the select
				// may have picked this arm over closeCh at random. Re-check
				// and hand the slot back: a queued session must not start
				// work after shutdown began.
				select {
				case <-p.closeCh:
					<-p.slots
					aborted = ErrPoolClosed
				default:
				}
			case <-s.ctx.Done():
				aborted = &core.CanceledError{Cause: context.Cause(s.ctx)}
			case <-p.closeCh:
				aborted = ErrPoolClosed
			}
		}
		p.mu.Lock()
		p.waiting--
		p.mu.Unlock()
		if aborted != nil {
			p.finishUnrun(s, aborted)
			return
		}
	}
	cur := p.inflight.Add(1)
	for {
		old := p.peak.Load()
		if cur <= old || p.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	if m := pmet(); m != nil {
		m.inflight.Inc()
	}
	s.startedAt = time.Now()
	p.queueWait.Observe(s.startedAt.Sub(s.queuedAt))
	rt := core.NewRuntime(s.runtimeOpts...)
	s.rt = rt
	// RunContext waits for the session's task tree to unwind even after a
	// cancellation, so the verdict, the runtime stats, and the tenant's
	// scheduler accounting below are exact — no abandoned goroutine can
	// mutate them later.
	err := rt.RunContext(s.ctx, main)
	s.finishedAt = time.Now()
	s.err = err
	s.verdict = Classify(err)
	s.stats = rt.Stats()
	p.execLat.Observe(s.finishedAt.Sub(s.startedAt))

	p.inflight.Add(-1)
	p.completed.Add(1)
	p.verdicts[s.verdict].Add(1)
	p.tasksRun.Add(s.stats.Tasks)
	p.dropped.Add(s.stats.EventsDropped)
	if m := pmet(); m != nil {
		m.inflight.Dec()
		m.countVerdict(s.tlabel, s.verdict)
		if s.stats.EventsDropped > 0 {
			m.eventsDropped.Add(s.stats.EventsDropped)
		}
	}
	// Release the slot BEFORE signalling completion: a caller that Waits
	// and immediately Submits must find the slot free, not race this
	// goroutine for it and get a spurious ErrPoolSaturated. The inflight
	// decrement above precedes the release, so Peak can never read above
	// MaxSessions.
	<-p.slots
	close(s.done)
}

// finishUnrun completes a session that never started executing — its ctx
// ended, or the pool closed, while it was still queued. The session never
// held a slot and never built a runtime; it completes with the abort
// error and VerdictCanceled.
func (p *Pool) finishUnrun(s *Session, err error) {
	now := time.Now()
	s.startedAt, s.finishedAt = now, now
	s.err = err
	s.verdict = VerdictCanceled
	p.completed.Add(1)
	p.verdicts[VerdictCanceled].Add(1)
	if m := pmet(); m != nil {
		m.countVerdict(s.tlabel, VerdictCanceled)
	}
	close(s.done)
}

// Close stops admission, promptly fails every session still waiting in
// the admission queue with ErrPoolClosed (VerdictCanceled — queued work
// does NOT ride out the drain), waits for every running session to
// finish, and then shuts down the shared scheduler (which blocks until
// all of its workers and its cleaner goroutine have exited). Idempotent;
// concurrent Close calls all block until the drain completes.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.closeCh)
	}
	p.mu.Unlock()
	p.drain.Wait()
	p.exec.Close()
}

// Executor exposes the shared scheduler, for monitoring (Stats/Workers/
// Idle). Submitting work to it directly bypasses session accounting.
func (p *Pool) Executor() *sched.Elastic { return p.exec }

// Observation is the pool's live windowed latency digest: queue-wait and
// execution-time summaries (milliseconds) over roughly the last Span of
// completed sessions. Unlike the lifetime PoolStats counters this
// answers "what are p50/p99 RIGHT NOW" — the signal deadline-aware
// admission control consumes.
type Observation struct {
	Span      time.Duration    `json:"span_ns"`
	QueueWait hist.HistSummary `json:"queue_wait"`
	Exec      hist.HistSummary `json:"exec"`
}

// Observe digests the pool's windowed latency recorders. Usable live,
// with or without a metrics registry installed; reads are control-plane
// cost (a scratch histogram merge), so poll it per admission decision or
// per scrape, not per task.
func (p *Pool) Observe() Observation {
	return Observation{
		Span:      p.execLat.Span(),
		QueueWait: p.queueWait.Summary(),
		Exec:      p.execLat.Summary(),
	}
}

// PoolStats is a snapshot of the pool's aggregate accounting.
type PoolStats struct {
	Submitted int64 `json:"submitted"` // accepted sessions (running, queued, or done)
	Rejected  int64 `json:"rejected"`  // saturated or closed rejections
	Completed int64 `json:"completed"`
	InFlight  int64 `json:"in_flight"`
	Waiting   int64 `json:"waiting"`
	Peak      int64 `json:"peak_in_flight"`

	// Per-verdict counts over completed sessions. Canceled counts both
	// sessions cancelled mid-execution (their ctx ended) and sessions
	// aborted in the admission queue by their ctx or by Close.
	Clean            int64 `json:"clean"`
	Deadlocks        int64 `json:"deadlocks"`
	PolicyViolations int64 `json:"policy_violations"`
	Failed           int64 `json:"failed"`
	Canceled         int64 `json:"canceled"`

	TasksRun      int64 `json:"tasks_run"`      // sum of session task counts
	EventsDropped int64 `json:"events_dropped"` // sum over traced sessions; 0 when healthy

	// Shared-scheduler counters (sched.SchedStats). Spawned+Reused is
	// the submission total; Thieves are cascade-spawned workers beyond
	// those; Steals measures cross-worker load redistribution — a steal
	// moves only the job, never its session attribution, because each
	// session's sched.Tenant counters travel inside the submitted
	// closure.
	WorkersSpawned int64 `json:"workers_spawned"`
	WorkersReused  int64 `json:"workers_reused"`
	WorkerThieves  int64 `json:"worker_thieves"`
	Steals         int64 `json:"steals"`
	Wakes          int64 `json:"wakes"`
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	waiting := int64(p.waiting)
	p.mu.Unlock()
	ss := p.exec.SchedStats()
	return PoolStats{
		Submitted:        p.submitted.Load(),
		Rejected:         p.rejected.Load(),
		Completed:        p.completed.Load(),
		InFlight:         p.inflight.Load(),
		Waiting:          waiting,
		Peak:             p.peak.Load(),
		Clean:            p.verdicts[VerdictClean].Load(),
		Deadlocks:        p.verdicts[VerdictDeadlock].Load(),
		PolicyViolations: p.verdicts[VerdictPolicy].Load(),
		Failed:           p.verdicts[VerdictFailed].Load(),
		Canceled:         p.verdicts[VerdictCanceled].Load(),
		TasksRun:         p.tasksRun.Load(),
		EventsDropped:    p.dropped.Load(),
		WorkersSpawned:   ss.Spawned,
		WorkersReused:    ss.Reused,
		WorkerThieves:    ss.Thieves,
		Steals:           ss.Steals,
		Wakes:            ss.Wakes,
	}
}
