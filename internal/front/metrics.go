package front

import (
	"sync/atomic"

	"repro/internal/obs"
)

// frontMetrics is the network edge's metric set — all control-plane
// sites (connection setup, admission answers, verdict delivery). The
// reject-reason and verdict label spaces are closed enums from the wire
// schema, and the tenant dimension never appears here at all: tenant
// attribution lives on the serve_* families, already bounded by the
// serving layer's cardinality guard, so a flood of hostile API keys
// grows nothing.
type frontMetrics struct {
	connections  *obs.Counter
	authFailures *obs.Counter
	submitted    *obs.Counter
	rejected     *obs.CounterVec // label: reason (closed set, see wire.go)
	verdicts     *obs.CounterVec // label: verdict

	// Fault-tolerance families. The retry-reason label space is the
	// closed classification set in retry.go; the breaker endpoint label
	// is operator-supplied addresses (bounded by config, not by peers).
	retries          *obs.CounterVec // label: reason
	breakerState     *obs.GaugeVec   // label: endpoint; 0=closed 1=open 2=half-open
	heartbeatsMissed *obs.Counter
	slowEvictions    *obs.Counter
}

var frontMet atomic.Pointer[frontMetrics]

func fmet() *frontMetrics { return frontMet.Load() }

func init() {
	obs.OnInstall(func(reg *obs.Registry) {
		if reg == nil {
			frontMet.Store(nil)
			return
		}
		frontMet.Store(&frontMetrics{
			connections:  reg.Counter("front_connections_total"),
			authFailures: reg.Counter("front_auth_failures_total"),
			submitted:    reg.Counter("front_sessions_submitted_total"),
			rejected:     reg.CounterVec("front_rejected_total", "reason"),
			verdicts:     reg.CounterVec("front_verdicts_total", "verdict"),

			retries:          reg.CounterVec("front_retries_total", "reason"),
			breakerState:     reg.GaugeVec("front_breaker_state", "endpoint"),
			heartbeatsMissed: reg.Counter("front_heartbeats_missed_total"),
			slowEvictions:    reg.Counter("serve_slow_client_evictions_total"),
		})
	})
}
