package core

import (
	"runtime"
	"strings"

	"repro/internal/trace"
)

// The runtime's event log is backed by the internal/trace subsystem: a
// lock-free, sharded collector in place of the seed's single mutexed
// ring. Writers (every task goroutine) append to per-shard chunks with
// one atomic reservation and one publishing store; a background
// collector drains retired chunks into the configured sinks. The Event
// and EventKind names below are aliases so existing call sites and the
// public facade keep working.

// EventKind classifies an entry in the runtime's event log.
type EventKind = trace.Kind

// Event kinds, covering every policy-relevant action: the life cycle of
// a promise (allocate, move, fulfil), the blocking structure (block,
// wake), task boundaries, and alarms. The trace package adds stream
// kinds (gap, meta, run-end) on top of these.
const (
	EvNewPromise = trace.KindNewPromise
	EvMove       = trace.KindMove
	EvSet        = trace.KindSet
	EvSetError   = trace.KindSetError
	EvBlock      = trace.KindBlock
	EvWake       = trace.KindWake
	EvTaskStart  = trace.KindTaskStart
	EvTaskEnd    = trace.KindTaskEnd
	EvAlarm      = trace.KindAlarm
)

// Event is one entry of the event log: which task did what to which
// promise (fields are zero when not applicable). Seq is a global
// sequence number; events with ascending Seq are in a total order
// consistent with each task's program order.
type Event = trace.Event

// tracer wires a Runtime to a trace.Collector. mem is the bounded
// in-memory sink behind WithEventLog (nil when only TraceTo sinks are
// installed); extra accumulates TraceTo sinks until NewRuntime builds
// the collector. Keeping mem apart from extra is what gives repeated
// WithEventLog options last-wins capacity semantics.
//
// staged selects the per-task staging path for event emission: a task's
// events accumulate in a small task-local buffer (no shared atomics
// beyond the sequence fetch) and flush to the collector in chunks — at
// buffer capacity, before the task commits to a blocking wait, and at
// task end. Sequence numbers are still reserved at the moment each
// event is logged, so the reconstructed total order is identical to
// direct emission; only delivery is deferred. Staging is enabled for
// streaming-only runtimes (TraceTo) and disabled when WithEventLog's
// MemSink is installed, because that sink exists for interactive
// inspection (Runtime.Events mid-run), which staging would make stale.
type tracer struct {
	c      *trace.Collector
	mem    *trace.MemSink
	extra  []trace.Sink
	staged bool
}

// ensureTracer returns the runtime's tracer, creating the pre-collector
// shell on first use (options run before NewRuntime builds the
// collector).
func (r *Runtime) ensureTracer() *tracer {
	if r.events == nil {
		r.events = &tracer{}
	}
	return r.events
}

// startTracer builds the collector once all options have registered
// their sinks. Called from NewRuntime. A cleanup tied to the Runtime
// closes the collector (stopping its background goroutine) when the
// runtime is garbage collected, so runtimes that never call TraceClose
// do not leak; TraceClose remains the deterministic path.
func (r *Runtime) startTracer() {
	tr := r.events
	sinks := tr.extra
	if tr.mem != nil {
		sinks = append([]trace.Sink{tr.mem}, tr.extra...)
	}
	tr.staged = tr.mem == nil
	tr.c = trace.New(trace.Options{Sinks: sinks})
	runtime.AddCleanup(r, func(c *trace.Collector) { c.Close() }, tr.c)
}

// WithEventLog retains the most recent `capacity` policy events (promise
// allocation, moves, sets, blocks, wakes, task boundaries, alarms) for
// post-mortem inspection via Runtime.Events / Runtime.EventLog. capacity
// <= 0 selects 4096. Unlike the seed's mutexed ring, recording is
// lock-free and sharded (see internal/trace); the retained window is
// enforced by the in-memory sink, not by the recording path.
func WithEventLog(capacity int) Option {
	if capacity <= 0 {
		capacity = 4096
	}
	return func(r *Runtime) {
		// Last option wins, like every other runtime option: a later
		// WithEventLog replaces the retention window.
		r.ensureTracer().mem = trace.NewMemSink(capacity)
	}
}

// TraceTo streams every policy event to sink in the binary trace format
// (or whatever the sink does with them); see internal/trace for the
// format, trace.NewFileSink / trace.NewWriterSink for ready-made sinks,
// and cmd/tracecheck for offline verification of the result. TraceTo
// may be combined with WithEventLog and with additional TraceTo sinks;
// all share one collector. Call Runtime.TraceClose when done to flush
// and close the sinks deterministically.
func TraceTo(sink trace.Sink) Option {
	return func(r *Runtime) {
		tr := r.ensureTracer()
		tr.extra = append(tr.extra, sink)
	}
}

// TraceFlush drains everything recorded so far into the sinks. Precise
// once the program is quiescent (e.g. after Run returns); mid-run it is
// advisory — concurrent events may or may not be included, but nothing
// is lost or duplicated.
func (r *Runtime) TraceFlush() error {
	if r.events == nil {
		return nil
	}
	return r.events.c.Flush()
}

// TraceClose performs a final drain and closes every sink (flushing
// file sinks to disk). Idempotent. The runtime must not record further
// events afterwards, so call it only after Run has returned.
func (r *Runtime) TraceClose() error {
	if r.events == nil {
		return nil
	}
	return r.events.c.Close()
}

// EventsDropped returns the number of events the collector had to drop
// (ring overflow under sustained producer pressure). Zero means the
// trace is complete; tier-1 tests assert exactly that.
func (r *Runtime) EventsDropped() uint64 {
	if r.events == nil {
		return 0
	}
	return r.events.c.Dropped()
}

// Events returns the retained event-log entries in total (Seq) order, or
// nil when WithEventLog was not set.
func (r *Runtime) Events() []Event {
	if r.events == nil || r.events.mem == nil {
		return nil
	}
	r.events.c.Flush()
	return r.events.mem.Snapshot()
}

// EventLog renders the retained events as a multi-line log string.
func (r *Runtime) EventLog() string {
	evs := r.Events()
	if evs == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// stageCap is the per-task staging buffer's capacity. 32 events covers
// the typical promise lifecycle burst a task emits between blocking
// points; at ~90 bytes per Event the buffer stays under 3 KiB, and its
// backing array is allocated once per task, on the task's first event.
const stageCap = 32

// logEvent records an event if tracing is enabled. Hot paths call it
// behind a nil check on r.events, so disabled logging costs one branch.
// Task and promise names are recorded raw ("" for the defaults, which
// render lazily as task-<id>/promise-<id>), so emission never pays a
// Sprintf.
func (r *Runtime) logEvent(kind EventKind, t *Task, s *pstate, detail string) {
	r.logEventArg(kind, t, s, 0, detail)
}

// logEventArg is logEvent with the kind-specific argument (move
// destination, spawn parent, alarm class — see trace.Event).
//
// Events attributed to a task are confined to that task's goroutine (the
// one exception, EvTaskStart, is logged by the parent before the child
// becomes runnable, which is a happens-before edge), so under the staged
// tracer they append to the task's private buffer with no shared write
// beyond the sequence reservation. Task-less events (run meta, run-end,
// alarms) always emit directly.
func (r *Runtime) logEventArg(kind EventKind, t *Task, s *pstate, arg uint64, detail string) {
	e := Event{Kind: kind, Arg: arg, Detail: detail}
	if t != nil {
		e.TaskID, e.TaskName = t.id, t.name
	}
	if s != nil {
		e.PromiseID, e.PromiseLabel = s.id, s.label
	}
	tr := r.events
	if t == nil || !tr.staged {
		tr.c.Emit(e)
		return
	}
	e.Seq = tr.c.NextSeq()
	if t.stage == nil {
		t.stage = make([]Event, 0, stageCap)
	}
	t.stage = append(t.stage, e)
	if len(t.stage) == stageCap {
		r.flushStage(t)
	}
}

// flushStage delivers the task's staged events to the collector and
// resets the buffer, keeping its capacity (the buffer rides through the
// task pool under WithTaskPooling). Entries are not zeroed on the hot
// path — the array pins at most stageCap events' strings until they are
// overwritten, and releaseTask scrubs it before a handle crosses tasks.
func (r *Runtime) flushStage(t *Task) {
	if len(t.stage) == 0 {
		return
	}
	r.events.c.EmitStamped(t.stage)
	t.stage = t.stage[:0]
}

// flushStageIfStaged is the pre-block hook: a task about to park (or
// terminate) must not sit on undelivered events, both so mid-run flushes
// see everything a quiescent task did and so a trace cut short at a hang
// still contains the block record of every blocked task.
func (r *Runtime) flushStageIfStaged(t *Task) {
	if r.events != nil && r.events.staged {
		r.flushStage(t)
	}
}

// logAlarm records an alarm event annotated with its class and the
// blamed task/promise, so the offline verifier (cmd/tracecheck) can
// re-check it structurally instead of parsing the message.
func (r *Runtime) logAlarm(err error) {
	e := Event{Kind: EvAlarm, Detail: err.Error()}
	switch x := err.(type) {
	case *DeadlockError:
		// The reported cycle length rides in the Arg's upper bits so the
		// offline verifier can compare it against its own walk without
		// parsing the message.
		e.Arg = trace.AlarmArg(trace.AlarmDeadlock, uint64(len(x.Cycle)))
		if len(x.Cycle) > 0 {
			e.TaskID, e.PromiseID = x.Cycle[0].TaskID, x.Cycle[0].PromiseID
		}
	case *OmittedSetError:
		e.Arg, e.TaskID = trace.AlarmArg(trace.AlarmOmittedSet, 0), x.TaskID
	case *OwnershipError:
		e.Arg, e.TaskID, e.PromiseID = trace.AlarmArg(trace.AlarmOwnership, 0), x.TaskID, x.PromiseID
	case *DoubleSetError:
		e.Arg, e.TaskID, e.PromiseID = trace.AlarmArg(trace.AlarmDoubleSet, 0), x.TaskID, x.PromiseID
	default:
		e.Arg = trace.AlarmArg(trace.AlarmOther, 0)
	}
	r.events.c.Emit(e)
}
