package graph

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// GraphStats is the package's cumulative orchestration accounting,
// process-wide across every Graph.Run. The same figures feed the obs
// registry when one is installed (graph_nodes_total{state},
// graph_retries_total, graph_admission_retries_total,
// graph_runs_total{result}, and the graph_node_latency_seconds window);
// the struct exists so harnesses can assert them with no registry and
// zero setup.
type GraphStats struct {
	GraphsRun        int64 `json:"graphs_run"`
	GraphsOK         int64 `json:"graphs_ok"`
	NodesSucceeded   int64 `json:"nodes_succeeded"`
	NodesFailed      int64 `json:"nodes_failed"`
	NodesCanceled    int64 `json:"nodes_canceled"`
	Retries          int64 `json:"retries"`
	AdmissionRetries int64 `json:"admission_retries"`
}

var cum struct {
	graphsRun, graphsOK         atomic.Int64
	nodesSucceeded, nodesFailed atomic.Int64
	nodesCanceled               atomic.Int64
	retries, admissionRetries   atomic.Int64
}

// Stats snapshots the cumulative counters.
func Stats() GraphStats {
	return GraphStats{
		GraphsRun:        cum.graphsRun.Load(),
		GraphsOK:         cum.graphsOK.Load(),
		NodesSucceeded:   cum.nodesSucceeded.Load(),
		NodesFailed:      cum.nodesFailed.Load(),
		NodesCanceled:    cum.nodesCanceled.Load(),
		Retries:          cum.retries.Load(),
		AdmissionRetries: cum.admissionRetries.Load(),
	}
}

// graphMetrics is the obs-registry mirror, resolved once at install so
// terminal transitions cost pre-resolved counter increments — the
// standard zero-cost-off pattern: with no registry installed every
// count site below is one atomic pointer load and a branch.
type graphMetrics struct {
	nodes            [nodeStateCount]*obs.Counter // graph_nodes_total{state}, terminal states only
	retries          *obs.Counter
	admissionRetries *obs.Counter
	runs             *obs.CounterVec // graph_runs_total{result}
	nodeLat          *obs.Window     // graph_node_latency_seconds
}

var graphMet atomic.Pointer[graphMetrics]

func gmet() *graphMetrics { return graphMet.Load() }

func init() {
	obs.OnInstall(func(reg *obs.Registry) {
		if reg == nil {
			graphMet.Store(nil)
			return
		}
		m := &graphMetrics{
			retries:          reg.Counter("graph_retries_total"),
			admissionRetries: reg.Counter("graph_admission_retries_total"),
			runs:             reg.CounterVec("graph_runs_total", "result"),
			nodeLat:          reg.Window("graph_node_latency_seconds", 0, 0),
		}
		vec := reg.CounterVec("graph_nodes_total", "state")
		for _, s := range []NodeState{NodeSucceeded, NodeFailed, NodeCanceled} {
			m.nodes[s] = vec.With(s.String())
		}
		graphMet.Store(m)
	})
}

// countNode records one terminal node transition; dur is the node's
// first-submit-to-terminal span (zero for cascade-canceled nodes, which
// never ran and contribute no latency sample).
func countNode(s NodeState, dur time.Duration) {
	switch s {
	case NodeSucceeded:
		cum.nodesSucceeded.Add(1)
	case NodeFailed:
		cum.nodesFailed.Add(1)
	case NodeCanceled:
		cum.nodesCanceled.Add(1)
	}
	if m := gmet(); m != nil {
		if c := m.nodes[s]; c != nil {
			c.Inc()
		}
		if dur > 0 {
			m.nodeLat.Observe(dur)
		}
	}
}

func countRetry() {
	cum.retries.Add(1)
	if m := gmet(); m != nil {
		m.retries.Inc()
	}
}

func countAdmissionRetry() {
	cum.admissionRetries.Add(1)
	if m := gmet(); m != nil {
		m.admissionRetries.Inc()
	}
}

// countGraph records one finished Graph.Run.
func countGraph(res *GraphResult) {
	cum.graphsRun.Add(1)
	result := "failed"
	if res.OK() {
		result = "ok"
		cum.graphsOK.Add(1)
	} else if res.Failed == 0 {
		result = "canceled"
	}
	if m := gmet(); m != nil {
		m.runs.With(result).Inc()
	}
}
