package core_test

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// The basic life of a promise under the ownership policy: the creator
// owns it, a spawn moves it, the owner fulfils it.
func ExampleRuntime_Run() {
	rt := core.NewRuntime()
	err := rt.Run(func(t *core.Task) error {
		p := core.NewPromiseNamed[int](t, "answer")
		if _, err := t.Async(func(child *core.Task) error {
			return p.Set(child, 42)
		}, p); err != nil {
			return err
		}
		v, err := p.Get(t)
		if err != nil {
			return err
		}
		fmt.Println("got", v)
		return nil
	})
	fmt.Println("err:", err)
	// Output:
	// got 42
	// err: <nil>
}

// A deadlock cycle is reported the moment it forms, naming every task and
// promise involved. (Which member of the cycle raises the alarm depends
// on arrival order, so this example reads the cycle from the runtime's
// recorded errors and sorts it for stable output.)
func ExampleDeadlockError() {
	rt := core.NewRuntime()
	err := rt.Run(func(t *core.Task) error {
		p := core.NewPromiseNamed[int](t, "p")
		q := core.NewPromiseNamed[int](t, "q")
		if _, err := t.AsyncNamed("t2", func(t2 *core.Task) error {
			if _, err := p.Get(t2); err != nil {
				return err
			}
			return q.Set(t2, 1)
		}, q); err != nil {
			return err
		}
		_, err := q.Get(t) // completes the cycle: main -> q -> t2 -> p -> main
		return err
	})
	var dl *core.DeadlockError
	if errors.As(err, &dl) {
		fmt.Println("cycle of", len(dl.Cycle), "tasks")
		lines := make([]string, 0, len(dl.Cycle))
		for _, n := range dl.Cycle {
			lines = append(lines, fmt.Sprintf("%s awaits %s", n.TaskName, n.PromiseLabel))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	// Output:
	// cycle of 2 tasks
	// main awaits q
	// t2 awaits p
}

// An omitted set is reported when the responsible task exits, and blocked
// consumers are unblocked with the blame attached.
func ExampleOmittedSetError() {
	rt := core.NewRuntime(core.WithMode(core.Ownership))
	err := rt.Run(func(t *core.Task) error {
		result := core.NewPromiseNamed[int](t, "result")
		if _, err := t.AsyncNamed("worker", func(c *core.Task) error {
			return nil // forgot result.Set
		}, result); err != nil {
			return err
		}
		_, err := result.Get(t)
		var broken *core.BrokenPromiseError
		if errors.As(err, &broken) {
			fmt.Printf("consumer unblocked: %s leaked by %s\n", broken.PromiseLabel, broken.TaskName)
		}
		return nil
	})
	var om *core.OmittedSetError
	if errors.As(err, &om) {
		fmt.Printf("runtime recorded: %s owed %d promise(s)\n", om.TaskName, len(om.Promises))
	}
	// Output:
	// consumer unblocked: result leaked by worker
	// runtime recorded: worker owed 1 promise(s)
}

// Only the owner may fulfil a promise; a double set is an error even in
// the unverified baseline.
func ExamplePromise_Set() {
	rt := core.NewRuntime()
	_ = rt.Run(func(t *core.Task) error {
		p := core.NewPromiseNamed[int](t, "once")
		fmt.Println("first:", p.Set(t, 1))
		err := p.Set(t, 2)
		var ds *core.DoubleSetError
		fmt.Println("second is double set:", errors.As(err, &ds))
		return nil
	})
	// Output:
	// first: <nil>
	// second is double set: true
}
