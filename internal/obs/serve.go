package obs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the handle returned by Serve: an HTTP listener publishing
// one registry. Close it to release the port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP endpoint for reg on addr (":0" picks a free
// port; read it back with Addr). reg nil means the installed registry.
// Routes:
//
//	GET /metrics       Prometheus text exposition format
//	GET /metrics.json  expvar-style JSON (the Snapshot digest)
//	GET /debug/pprof/  net/http/pprof profiles (heap, goroutine, cpu, ...)
//
// The endpoint is read-only and unauthenticated — bind it to loopback or
// an operations network, exactly like expvar/pprof defaults.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Installed()
	}
	if reg == nil {
		return nil, errors.New("obs: Serve with no registry (pass one, or obs.Install first)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	// net/http/pprof registers on http.DefaultServeMux from its init;
	// wiring the handlers explicitly keeps this mux self-contained (and
	// the default mux unused).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		_, _ = w.Write([]byte("repro telemetry\n\n/metrics\n/metrics.json\n/debug/pprof/\n"))
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and frees the port.
func (s *Server) Close() error { return s.srv.Close() }
