// Package ppg is an iteration-graph workload shaped like the
// proximal-proximal-gradient method (arXiv:1708.06908): a ridge
// least-squares objective split into row blocks, iterated as rounds of
// per-block gradient MAP nodes feeding a barrier REDUCE node that takes
// the descent step and hands the new iterate to the next round. Each
// map and each reduce is its own session; the iterate and the block
// gradients travel between them through cross-session futures. That
// makes it the canonical "wide fan, hard barrier, repeat" graph family,
// complementing ppsim's deep chain — and like every workload here it
// carries a bitwise-identical sequential reference to verify against.
package ppg

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Config sizes the optimization.
type Config struct {
	// Dim is the iterate length n.
	Dim int
	// Blocks is the number of row blocks — the map-node fan per round.
	Blocks int
	// RowsPerBlock is each block's row count.
	RowsPerBlock int
	// Iters is the number of map/reduce rounds.
	Iters int
	// Chunks is the intra-map parallelism: each gradient node splits its
	// rows into this many child tasks and merges their partials in order.
	Chunks int
	// Step is the gradient step size, Lambda the ridge weight.
	Step, Lambda float64
	// Seed fixes the generated problem data.
	Seed int64
}

// Small is the test-sized configuration.
func Small() Config {
	return Config{Dim: 16, Blocks: 4, RowsPerBlock: 32, Iters: 4, Chunks: 2, Step: 1e-4, Lambda: 0.1, Seed: 3}
}

// Default is sized for benchmark runs.
func Default() Config {
	return Config{Dim: 64, Blocks: 8, RowsPerBlock: 128, Iters: 10, Chunks: 2, Step: 1e-4, Lambda: 0.1, Seed: 3}
}

// Paper scales the fan and problem size toward the paper's distributed
// experiments.
func Paper() Config {
	return Config{Dim: 256, Blocks: 16, RowsPerBlock: 512, Iters: 20, Chunks: 4, Step: 1e-4, Lambda: 0.1, Seed: 3}
}

// blockData deterministically regenerates block b's rows and targets
// from the seed. Map nodes rebuild their block instead of shipping
// matrices across sessions — futures carry iterates and gradients only.
func blockData(cfg Config, b int) (rows [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(b)*104729))
	rows = make([][]float64, cfg.RowsPerBlock)
	y = make([]float64, cfg.RowsPerBlock)
	for i := range rows {
		row := make([]float64, cfg.Dim)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		rows[i] = row
		y[i] = rng.Float64()*2 - 1
	}
	return rows, y
}

// chunkGrad computes the partial gradient A_c^T (A_c z - y_c) over one
// contiguous row chunk.
func chunkGrad(rows [][]float64, y, z []float64, lo, hi int) []float64 {
	g := make([]float64, len(z))
	for i := lo; i < hi; i++ {
		var r float64
		for j, a := range rows[i] {
			r += a * z[j]
		}
		r -= y[i]
		for j, a := range rows[i] {
			g[j] += a * r
		}
	}
	return g
}

// chunkBounds splits rows into cfg.Chunks contiguous spans.
func chunkBounds(cfg Config, c int) (lo, hi int) {
	per := (cfg.RowsPerBlock + cfg.Chunks - 1) / cfg.Chunks
	lo = c * per
	hi = lo + per
	if hi > cfg.RowsPerBlock {
		hi = cfg.RowsPerBlock
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// blockGradSeq is the sequential per-block gradient: the same chunk
// split and merge order as the parallel body, so results are bitwise
// identical.
func blockGradSeq(cfg Config, b int, z []float64) []float64 {
	rows, y := blockData(cfg, b)
	g := make([]float64, cfg.Dim)
	for c := 0; c < cfg.Chunks; c++ {
		lo, hi := chunkBounds(cfg, c)
		for j, v := range chunkGrad(rows, y, z, lo, hi) {
			g[j] += v
		}
	}
	return g
}

// descend applies one reduce step: z' = z - Step*(sum_b grad_b + Lambda*z),
// summing blocks in index order.
func descend(cfg Config, z []float64, grads [][]float64) []float64 {
	next := make([]float64, len(z))
	for j := range next {
		var s float64
		for _, g := range grads {
			s += g[j]
		}
		next[j] = z[j] - cfg.Step*(s+cfg.Lambda*z[j])
	}
	return next
}

// RunSequential computes the reference iterate single-threaded.
func RunSequential(cfg Config) []float64 {
	z := make([]float64, cfg.Dim)
	for k := 0; k < cfg.Iters; k++ {
		grads := make([][]float64, cfg.Blocks)
		for b := range grads {
			grads[b] = blockGradSeq(cfg, b, z)
		}
		z = descend(cfg, z, grads)
	}
	return z
}

// runBlockGrad is the parallel gradient body under task t: regenerate
// the block, fan the row chunks across child tasks, merge partials in
// chunk order.
func runBlockGrad(t *core.Task, cfg Config, b int, z []float64) ([]float64, error) {
	rows, y := blockData(cfg, b)
	cells := make([]*core.Promise[[]float64], cfg.Chunks)
	specs := make([]core.SpawnSpec, cfg.Chunks)
	for c := 0; c < cfg.Chunks; c++ {
		c := c
		cells[c] = core.NewPromiseNamed[[]float64](t, fmt.Sprintf("partial-%d-%d", b, c))
		specs[c] = core.SpawnSpec{
			Name: fmt.Sprintf("grad-%d-%d", b, c),
			Body: func(ct *core.Task) error {
				lo, hi := chunkBounds(cfg, c)
				return cells[c].Set(ct, chunkGrad(rows, y, z, lo, hi))
			},
			Moved: []core.Movable{cells[c]},
		}
	}
	if _, err := t.AsyncBatch(specs); err != nil {
		return nil, err
	}
	g := make([]float64, cfg.Dim)
	for _, cell := range cells {
		part, err := cell.Get(t)
		if err != nil {
			return nil, err
		}
		for j, v := range part {
			g[j] += v
		}
	}
	return g, nil
}

func gradName(k, b int) string { return fmt.Sprintf("it%02d-grad%02d", k, b) }
func redName(k int) string     { return fmt.Sprintf("it%02d-reduce", k) }

// BuildGraph assembles the iteration graph: per round k, Blocks gradient
// map nodes (each consuming the previous round's iterate) and one
// barrier reduce node consuming all of them plus the iterate, emitting
// the next iterate. The returned check compares the final reduce output
// against the sequential reference bitwise.
func BuildGraph(cfg Config) (*graph.Graph, func(*graph.GraphResult) error) {
	g := graph.New("ppg")
	prev := "" // previous round's reduce node, "" for round 0
	for k := 0; k < cfg.Iters; k++ {
		dep := prev
		iterate := func(in graph.Inputs) ([]float64, error) {
			if dep == "" {
				return make([]float64, cfg.Dim), nil
			}
			return graph.In[[]float64](in, dep)
		}
		gradNames := make([]string, cfg.Blocks)
		for b := 0; b < cfg.Blocks; b++ {
			b := b
			gradNames[b] = gradName(k, b)
			var opts []graph.NodeOption
			if dep != "" {
				opts = append(opts, graph.After(dep))
			}
			g.MustNode(gradNames[b], func(t *core.Task, in graph.Inputs) (any, error) {
				z, err := iterate(in)
				if err != nil {
					return nil, err
				}
				return runBlockGrad(t, cfg, b, z)
			}, opts...)
		}
		deps := gradNames
		if dep != "" {
			deps = append(deps, dep)
		}
		k := k
		g.MustNode(redName(k), func(_ *core.Task, in graph.Inputs) (any, error) {
			z, err := iterate(in)
			if err != nil {
				return nil, err
			}
			grads := make([][]float64, cfg.Blocks)
			for b := range grads {
				if grads[b], err = graph.In[[]float64](in, gradName(k, b)); err != nil {
					return nil, err
				}
			}
			return descend(cfg, z, grads), nil
		}, graph.After(deps...))
		prev = redName(k)
	}

	last := prev
	check := func(res *graph.GraphResult) error {
		out, ok := res.Output(last)
		if !ok {
			return fmt.Errorf("ppg: final reduce did not succeed (graph err: %v)", res.Err)
		}
		got := out.([]float64)
		want := RunSequential(cfg)
		if len(got) != len(want) {
			return fmt.Errorf("ppg: iterate length %d, want %d", len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				return fmt.Errorf("ppg: iterate[%d] = %v, want %v (not bitwise identical)", j, got[j], want[j])
			}
		}
		return nil
	}
	return g, check
}

// Run executes all rounds inside a single session: per round, one child
// task per block gradient (each fanning its chunks), merged in block
// order — the same arithmetic order as the graph form.
func Run(t *core.Task, cfg Config) ([]float64, error) {
	z := make([]float64, cfg.Dim)
	for k := 0; k < cfg.Iters; k++ {
		cells := make([]*core.Promise[[]float64], cfg.Blocks)
		specs := make([]core.SpawnSpec, cfg.Blocks)
		for b := 0; b < cfg.Blocks; b++ {
			b := b
			cells[b] = core.NewPromiseNamed[[]float64](t, fmt.Sprintf("block-%d-%d", k, b))
			zk := z
			specs[b] = core.SpawnSpec{
				Name: fmt.Sprintf("block-%d-%d", k, b),
				Body: func(ct *core.Task) error {
					g, err := runBlockGrad(ct, cfg, b, zk)
					if err != nil {
						return err
					}
					return cells[b].Set(ct, g)
				},
				Moved: []core.Movable{cells[b]},
			}
		}
		if _, err := t.AsyncBatch(specs); err != nil {
			return nil, err
		}
		grads := make([][]float64, cfg.Blocks)
		for b, cell := range cells {
			g, err := cell.Get(t)
			if err != nil {
				return nil, err
			}
			grads[b] = g
		}
		z = descend(cfg, z, grads)
	}
	return z, nil
}

// Main returns a root TaskFunc for the harness.
func Main(cfg Config) core.TaskFunc {
	return func(t *core.Task) error {
		_, err := Run(t, cfg)
		return err
	}
}
