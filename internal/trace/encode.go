package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The binary trace format: a 5-byte header ("PTRC" + format version)
// followed by varint-packed records until EOF.
//
//	record := kind(1 byte)
//	          uvarint(seq) uvarint(taskID) uvarint(promiseID) uvarint(arg)
//	          str(taskName) str(promiseLabel) str(detail)
//	str    := uvarint(len) bytes
//
// Records carry absolute sequence numbers, so a stream remains decodable
// and totally orderable regardless of the batch interleaving the
// collector produced. Default task/promise names are stored as empty
// strings and re-rendered on display, which keeps hot-path emission free
// of Sprintf and the common record under ~10 bytes.

const formatVersion = 1

var magic = [4]byte{'P', 'T', 'R', 'C'}

// maxStringLen bounds decoded strings so a corrupt or hostile stream
// cannot ask for an absurd allocation.
const maxStringLen = 1 << 24

// ErrBadHeader is returned when a stream does not start with the trace
// magic or carries an unknown format version.
var ErrBadHeader = errors.New("trace: bad header (not a trace stream, or unknown version)")

// AppendEvent appends the binary encoding of e to buf and returns the
// extended slice. Capacity for the whole record is reserved up front and
// the fields are written by index (binary.PutUvarint), not byte-by-byte
// appends — encoding is on the traced hot path's critical cost line (the
// staging fast path delivers straight into the encoder), and the
// append-per-byte version of this function was the single largest line
// item in the traced set/get profile.
func AppendEvent(buf []byte, e Event) []byte {
	const maxFixed = 1 + 7*binary.MaxVarintLen64 // kind + 4 ids + 3 string lengths
	need := maxFixed + len(e.TaskName) + len(e.PromiseLabel) + len(e.Detail)
	if free := cap(buf) - len(buf); free < need {
		grown := make([]byte, len(buf), cap(buf)*2+need)
		copy(grown, buf)
		buf = grown
	}
	b := buf[:cap(buf)]
	i := len(buf)
	b[i] = byte(e.Kind)
	i++
	i += binary.PutUvarint(b[i:], e.Seq)
	i += binary.PutUvarint(b[i:], e.TaskID)
	i += binary.PutUvarint(b[i:], e.PromiseID)
	i += binary.PutUvarint(b[i:], e.Arg)
	i += binary.PutUvarint(b[i:], uint64(len(e.TaskName)))
	i += copy(b[i:], e.TaskName)
	i += binary.PutUvarint(b[i:], uint64(len(e.PromiseLabel)))
	i += copy(b[i:], e.PromiseLabel)
	i += binary.PutUvarint(b[i:], uint64(len(e.Detail)))
	i += copy(b[i:], e.Detail)
	return b[:i]
}

// AppendHeader appends the stream header to buf.
func AppendHeader(buf []byte) []byte {
	return append(append(buf, magic[:]...), formatVersion)
}

// Decoder reads events from a binary trace stream.
type Decoder struct {
	r      *bufio.Reader
	header bool
}

// NewDecoder wraps r. The header is consumed by the first Decode call.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode returns the next event, or io.EOF at a clean end of stream.
func (d *Decoder) Decode() (Event, error) {
	var e Event
	if !d.header {
		var h [5]byte
		if _, err := io.ReadFull(d.r, h[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				err = ErrBadHeader
			}
			return e, err
		}
		if [4]byte(h[:4]) != magic || h[4] != formatVersion {
			return e, ErrBadHeader
		}
		d.header = true
	}
	kind, err := d.r.ReadByte()
	if err != nil {
		return e, err // io.EOF here is the clean end of stream
	}
	e.Kind = Kind(kind)
	// Field reads are unrolled (no pointer slices into e) so decoding a
	// record stays allocation-free beyond its strings.
	if e.Seq, err = binary.ReadUvarint(d.r); err != nil {
		return e, truncated(err)
	}
	if e.TaskID, err = binary.ReadUvarint(d.r); err != nil {
		return e, truncated(err)
	}
	if e.PromiseID, err = binary.ReadUvarint(d.r); err != nil {
		return e, truncated(err)
	}
	if e.Arg, err = binary.ReadUvarint(d.r); err != nil {
		return e, truncated(err)
	}
	if e.TaskName, err = d.readString(); err != nil {
		return e, truncated(err)
	}
	if e.PromiseLabel, err = d.readString(); err != nil {
		return e, truncated(err)
	}
	if e.Detail, err = d.readString(); err != nil {
		return e, truncated(err)
	}
	return e, nil
}

func (d *Decoder) readString() (string, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("trace: string length %d exceeds limit", n)
	}
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// truncated converts a mid-record EOF into an explicit error: EOF is
// clean only between records.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errors.New("trace: truncated record")
	}
	return err
}

// ReadAll decodes an entire stream and returns the events sorted into
// total (Seq) order.
func ReadAll(r io.Reader) ([]Event, error) {
	d := NewDecoder(r)
	var out []Event
	for {
		e, err := d.Decode()
		if err == io.EOF {
			SortBySeq(out)
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ReadFile decodes the trace file at path into Seq-sorted events.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := ReadAll(f)
	if err != nil {
		return evs, fmt.Errorf("trace: %s: %w", path, err)
	}
	return evs, nil
}
