package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, counter
// families as labeled series, and windows as summaries — quantile series
// in SECONDS (the Prometheus base unit for time) plus _sum and _count.
// Output is sorted by metric name so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	vecs := make(map[string]*CounterVec, len(r.vecs))
	for n, v := range r.vecs {
		vecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	windows := make(map[string]*Window, len(r.windows))
	for n, wd := range r.windows {
		windows[n] = wd
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name].Value())
	}
	for _, name := range sortedKeys(vecs) {
		v := vecs[name]
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		for _, s := range v.snapshot() {
			b.WriteString(name)
			b.WriteByte('{')
			for i, label := range v.labels {
				if i > 0 {
					b.WriteByte(',')
				}
				// %q escapes exactly what the text format requires:
				// backslash, double quote, newline.
				fmt.Fprintf(&b, "%s=%q", label, s.values[i])
			}
			fmt.Fprintf(&b, "} %d\n", s.count)
		}
	}
	for _, name := range sortedKeys(gaugeVecs) {
		v := gaugeVecs[name]
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		for _, s := range v.snapshot() {
			b.WriteString(name)
			b.WriteByte('{')
			for i, label := range v.labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=%q", label, s.values[i])
			}
			fmt.Fprintf(&b, "} %d\n", s.count)
		}
	}
	for _, name := range sortedKeys(windows) {
		wd := windows[name]
		m := wd.merged()
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=\"%g\"} %g\n", name, q, m.Quantile(q).Seconds())
		}
		fmt.Fprintf(&b, "%s_sum %g\n", name, m.Sum().Seconds())
		fmt.Fprintf(&b, "%s_count %d\n", name, m.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ObserveSince is a convenience for exec-latency call sites:
// w.Observe(time.Since(start)) with a nil-safe receiver, so call sites
// holding a possibly-nil *Window need no branch.
func (w *Window) ObserveSince(start time.Time) {
	if w != nil {
		w.Observe(time.Since(start))
	}
}
