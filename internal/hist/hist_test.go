package hist

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the log-linear error envelope (one sub-bucket width,
	// i.e. <= 1/16 relative for values >= 16).
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 4095, 4096,
		1e6, 1e9, 123456789, 1 << 40, 1<<62 + 12345} {
		idx := histIndex(v)
		up := histUpper(idx)
		if up < v {
			t.Fatalf("v=%d: bucket upper %d below value", v, up)
		}
		if v >= 16 && float64(up-v) > float64(v)/16+1 {
			t.Fatalf("v=%d: bucket upper %d too loose", v, up)
		}
		if idx > 0 && histUpper(idx-1) >= v {
			t.Fatalf("v=%d landed in bucket %d but previous bucket already covers it", v, idx)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms, exact ranks known.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		// Conservative upper-bound estimate within 7% of the true rank value.
		if got < want || float64(got) > float64(want)*1.07 {
			t.Fatalf("q%.2f = %v, want [%v, %v]", q, got, want, time.Duration(float64(want)*1.07))
		}
	}
	check(0.50, 500*time.Millisecond)
	check(0.90, 900*time.Millisecond)
	check(0.99, 990*time.Millisecond)
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max %v", h.Max())
	}
	if h.Min() != time.Millisecond {
		t.Fatalf("min %v", h.Min())
	}
	if m := h.Mean(); m < 499*time.Millisecond || m > 502*time.Millisecond {
		t.Fatalf("mean %v", m)
	}
	// The quantile never exceeds the true maximum even in the top bucket.
	if h.Quantile(1) != 1000*time.Millisecond {
		t.Fatalf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramEmptyAndSummary(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to zero, does not underflow
	h.Observe(2 * time.Millisecond)
	s := h.Summary()
	if s.Count != 2 || s.MaxMs < 1.9 || s.MaxMs > 2.2 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// The loadgen drivers feed one histogram from many goroutines; run a
	// mixed hammer (with -race in CI) and check nothing is lost.
	h := NewHistogram()
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(rng.Intn(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count %d, want %d", h.Count(), workers*each)
	}
}

func TestHistogramQuantileRankIsCeil(t *testing.T) {
	// Regression: rank truncation made p50 of {10,20,30} report the 1st
	// observation's bucket instead of the 2nd.
	h := NewHistogram()
	for _, ms := range []int{10, 20, 30} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if got := h.Quantile(0.5); got < 20*time.Millisecond || got > 22*time.Millisecond {
		t.Fatalf("p50 of {10,20,30}ms = %v, want ~20ms", got)
	}
	// q=0.99 over 101 observations must select rank 100 (ceil), not 99.
	h2 := NewHistogram()
	for i := 1; i <= 101; i++ {
		h2.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h2.Quantile(0.99); got < 100*time.Millisecond {
		t.Fatalf("p99 of 1..101ms = %v, want >= 100ms", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile (including the out-of-range ones) is zero.
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty q%.1f = %v", q, got)
		}
	}
	// Single sample: every quantile is that sample (clamped to the true
	// max, so no bucket rounding either).
	h.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Fatalf("single-sample q%.2f = %v, want 7ms", q, got)
		}
	}
	// p100 = true maximum exactly, p0 = first rank. Out-of-range q clamps.
	h.Observe(50 * time.Millisecond)
	if got := h.Quantile(1); got != 50*time.Millisecond {
		t.Fatalf("p100 = %v, want exact max 50ms", got)
	}
	if got := h.Quantile(2); got != 50*time.Millisecond {
		t.Fatalf("q=2 should clamp to p100, got %v", got)
	}
	if got := h.Quantile(0); got < 7*time.Millisecond || got > 8*time.Millisecond {
		t.Fatalf("p0 = %v, want ~7ms", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 500; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 1000*time.Millisecond {
		t.Fatalf("merged min/max %v/%v", a.Min(), a.Max())
	}
	if m := a.Mean(); m < 499*time.Millisecond || m > 502*time.Millisecond {
		t.Fatalf("merged mean %v", m)
	}
	if got := a.Quantile(0.99); got < 990*time.Millisecond || float64(got) > 990*1.07*float64(time.Millisecond) {
		t.Fatalf("merged p99 %v", got)
	}
	// b is a pure source: unchanged.
	if b.Count() != 500 || b.Min() != 501*time.Millisecond {
		t.Fatalf("merge mutated source: n=%d min=%v", b.Count(), b.Min())
	}
	// Merging an empty histogram (or nil, or self) is a no-op.
	before := a.Summary()
	a.Merge(NewHistogram())
	a.Merge(nil)
	a.Merge(a)
	if after := a.Summary(); after != before {
		t.Fatalf("no-op merges changed summary: %+v -> %+v", before, after)
	}
	// Merge into an empty histogram adopts the source's min.
	c := NewHistogram()
	c.Merge(b)
	if c.Min() != 501*time.Millisecond || c.Count() != 500 {
		t.Fatalf("merge-into-empty: min=%v n=%d", c.Min(), c.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(9 * time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left state: %+v", h.Summary())
	}
	// Usable again after reset, min included (the n==1 re-seed).
	h.Observe(5 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 5*time.Millisecond {
		t.Fatalf("post-reset observe: n=%d min=%v", h.Count(), h.Min())
	}
}

func TestHistogramConcurrentObserveSnapshotMerge(t *testing.T) {
	// The windowed recorder reads (Quantile/Summary/Merge) while load
	// goroutines Observe and bucket rotation Resets; hammer all of it
	// together so -race in CI covers every lock pairing.
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(rng.Intn(1_000_000)))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		scratch := NewHistogram()
		for i := 0; i < 200; i++ {
			_ = h.Quantile(0.99)
			_ = h.Summary()
			scratch.Merge(h)
			if i%50 == 49 {
				scratch.Reset()
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if h.Count() == 0 {
		t.Fatal("no observations recorded")
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	if h.Sum() != 0 {
		t.Fatalf("empty sum %v", h.Sum())
	}
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Sum() != 5*time.Millisecond {
		t.Fatalf("sum %v, want 5ms", h.Sum())
	}
}
