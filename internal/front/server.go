package front

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// handshakeTimeout bounds how long a fresh conn may sit before its hello
// arrives — an unauthenticated socket must not pin a goroutine forever.
const handshakeTimeout = 5 * time.Second

// defaultTraceCap is the per-session event-log retention for sessions
// that request trace bytes.
const defaultTraceCap = 4096

// Config configures a Front. The serving pool behind it is configured
// through the same serve.Option family Pool construction uses — the
// front adds only what the network edge needs: an address, the API-key
// to tenant map, and the workload registry.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// Keys maps API keys (sent in the hello frame) to fairness tenant
	// names. A key's tenant gets the weight configured for it via
	// serve.WithTenantWeight in Serve. Empty means no remote caller can
	// authenticate.
	Keys map[string]string
	// Registry maps wire workload names to programs; nil selects
	// DefaultRegistry (the benchmark table plus "Deadlock").
	Registry Registry
	// Serve is the pool-scope option list for the front's serving pool —
	// the shared options surface: sizing, tenant weights, deadline
	// admission, base runtime options all configure here exactly as they
	// would for a local serve.New.
	Serve []serve.Option
	// TraceCap is the event-log retention for sessions submitted with
	// Trace; <= 0 selects 4096.
	TraceCap int
}

// Front is the network serving front-end: it owns a listener, a serving
// pool, and one goroutine per connection plus one per in-flight session
// (the verdict waiter). New starts it; Shutdown drains it.
type Front struct {
	cfg  Config
	reg  Registry
	pool *serve.Pool
	ln   net.Listener

	mu       sync.Mutex
	draining bool
	conns    map[*frontConn]struct{}

	connWG sync.WaitGroup // connection handler goroutines
	sessWG sync.WaitGroup // verdict-waiter goroutines
	// sessDone is closed by the last verdict waiter during a drain.
	acceptDone chan struct{}
}

// frontConn is one authenticated client connection.
type frontConn struct {
	f      *Front
	nc     net.Conn
	fw     *frameWriter
	tenant string

	mu       sync.Mutex
	inflight map[uint64]context.CancelCauseFunc
}

// New creates a Front, binds its listener, and starts serving. The
// returned Front is live: clients can connect immediately. Call
// Shutdown to stop it; a Front holds its pool, listener, and goroutines
// until then.
func New(cfg Config) (*Front, error) {
	if cfg.Registry == nil {
		cfg.Registry = DefaultRegistry()
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = defaultTraceCap
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("front: listen %s: %w", cfg.Addr, err)
	}
	f := &Front{
		cfg:        cfg,
		reg:        cfg.Registry,
		pool:       serve.New(cfg.Serve...),
		ln:         ln,
		conns:      make(map[*frontConn]struct{}),
		acceptDone: make(chan struct{}),
	}
	go f.acceptLoop()
	return f, nil
}

// Addr returns the bound listen address (useful with ":0").
func (f *Front) Addr() string { return f.ln.Addr().String() }

// Pool exposes the serving pool behind the front, for stats and
// observation (serve.Pool.Stats / Observe).
func (f *Front) Pool() *serve.Pool { return f.pool }

func (f *Front) acceptLoop() {
	defer close(f.acceptDone)
	for {
		nc, err := f.ln.Accept()
		if err != nil {
			return // listener closed: drain underway
		}
		f.mu.Lock()
		if f.draining {
			f.mu.Unlock()
			nc.Close()
			continue
		}
		c := &frontConn{f: f, nc: nc, fw: &frameWriter{w: nc}, inflight: make(map[uint64]context.CancelCauseFunc)}
		f.conns[c] = struct{}{}
		f.connWG.Add(1)
		f.mu.Unlock()
		if m := fmet(); m != nil {
			m.connections.Inc()
		}
		go func() {
			defer f.connWG.Done()
			c.serve()
			f.mu.Lock()
			delete(f.conns, c)
			f.mu.Unlock()
		}()
	}
}

// serve runs one connection: handshake, then the submit/cancel read
// loop. Accept/reject frames are sent synchronously from this loop, so
// they reach the client in submission order and always precede the
// session's verdict frame (the verdict waiter can only start after the
// accept has been written).
func (c *frontConn) serve() {
	defer c.nc.Close()
	// When the read loop exits — client gone, or server cutting conns at
	// the end of a drain — nobody is left to receive verdicts: cancel
	// the conn's in-flight sessions so they do not run for a dead peer.
	defer c.cancelAll(errors.New("front: connection closed"))

	if err := c.handshake(); err != nil {
		return
	}
	for {
		typ, body, err := readFrame(c.nc)
		if err != nil {
			return
		}
		switch typ {
		case frameSubmit:
			var req submitMsg
			if err := decode(typ, body, &req); err != nil {
				return // corrupt stream: cut the conn
			}
			c.handleSubmit(req)
		case frameCancel:
			var req cancelMsg
			if err := decode(typ, body, &req); err != nil {
				return
			}
			c.mu.Lock()
			cancel := c.inflight[req.ID]
			c.mu.Unlock()
			if cancel != nil {
				cancel(context.Canceled)
			}
		default:
			return // protocol violation
		}
	}
}

func (c *frontConn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, body, err := readFrame(c.nc)
	if err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Time{})
	var hello helloMsg
	if typ != frameHello || decode(typ, body, &hello) != nil {
		return errors.New("front: expected hello")
	}
	if hello.Version != ProtocolVersion {
		c.fw.send(frameHelloAck, helloAckMsg{
			Version: ProtocolVersion,
			Err:     fmt.Sprintf("unsupported protocol version %d (server speaks %d)", hello.Version, ProtocolVersion),
		})
		return errors.New("front: version skew")
	}
	tenant, ok := c.f.cfg.Keys[hello.Key]
	if !ok {
		c.fw.send(frameHelloAck, helloAckMsg{Version: ProtocolVersion, Err: "unknown API key"})
		if m := fmet(); m != nil {
			m.authFailures.Inc()
		}
		return errors.New("front: bad key")
	}
	c.tenant = tenant
	return c.fw.send(frameHelloAck, helloAckMsg{Version: ProtocolVersion, Tenant: tenant})
}

// handleSubmit admits one wire submission into the pool and answers it
// synchronously. Rejections carry the machine-readable reason the
// metrics count; on acceptance a verdict waiter streams the outcome back
// when the session completes.
func (c *frontConn) handleSubmit(req submitMsg) {
	f := c.f
	reject := func(reason, detail string) {
		if m := fmet(); m != nil {
			m.rejected.With(reason).Inc()
		}
		c.fw.send(frameReject, rejectMsg{ID: req.ID, Reason: reason, Err: detail})
	}
	f.mu.Lock()
	draining := f.draining
	f.mu.Unlock()
	if draining {
		reject(RejectDraining, "server is draining")
		return
	}
	prog, ok := f.reg[req.Workload]
	if !ok {
		reject(RejectUnknownWorkload, fmt.Sprintf("workload %q not registered", req.Workload))
		return
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	if req.DeadlineMs > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithDeadline(ctx, time.Now().Add(time.Duration(req.DeadlineMs)*time.Millisecond))
		origCancel := cancel
		cancel = func(cause error) { tcancel(); origCancel(cause) }
	}

	opts := []serve.Option{serve.WithTenant(c.tenant)}
	if req.Trace {
		opts = append(opts, serve.WithRuntime(core.WithEventLog(f.cfg.TraceCap)))
	}
	name := fmt.Sprintf("%s/%s#%d", c.tenant, req.Workload, req.ID)
	s, err := f.pool.Submit(ctx, name, prog(workloads.ParseScale(req.Scale)), opts...)
	if err != nil {
		cancel(err)
		switch {
		case errors.Is(err, serve.ErrDeadlineInfeasible):
			reject(RejectDeadline, err.Error())
		case errors.Is(err, serve.ErrPoolSaturated):
			reject(RejectSaturated, err.Error())
		case errors.Is(err, serve.ErrPoolClosed):
			reject(RejectDraining, err.Error())
		default:
			reject(RejectSaturated, err.Error())
		}
		return
	}
	c.mu.Lock()
	c.inflight[req.ID] = cancel
	c.mu.Unlock()
	if m := fmet(); m != nil {
		m.submitted.Inc()
	}
	// Accept is written HERE, before the waiter exists, so it always
	// precedes the verdict frame on the wire.
	c.fw.send(frameAccept, acceptMsg{ID: req.ID})

	f.sessWG.Add(1)
	go func() {
		defer f.sessWG.Done()
		s.Wait()
		v := verdictMsg{
			ID:         req.ID,
			Verdict:    s.Verdict().String(),
			QueueMs:    s.QueueLatency().Milliseconds(),
			DurationMs: s.Duration().Milliseconds(),
		}
		if err := s.Err(); err != nil {
			v.Err = err.Error()
		}
		if req.Trace {
			if rt := s.Runtime(); rt != nil {
				v.Trace = []byte(rt.EventLog())
			}
		}
		if m := fmet(); m != nil {
			m.verdicts.With(v.Verdict).Inc()
		}
		c.mu.Lock()
		delete(c.inflight, req.ID)
		c.mu.Unlock()
		cancel(nil) // release the deadline timer
		c.fw.send(frameVerdict, v)
	}()
}

// cancelAll cancels every in-flight session on the conn with cause.
func (c *frontConn) cancelAll(cause error) {
	c.mu.Lock()
	cancels := make([]context.CancelCauseFunc, 0, len(c.inflight))
	for _, cancel := range c.inflight {
		cancels = append(cancels, cancel)
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel(cause)
	}
}

// Shutdown drains the front gracefully: stop accepting connections and
// submissions (new submits are rejected with reason "draining", and a
// goaway frame tells connected clients), let in-flight sessions finish
// until ctx expires, then cancel whatever remains, deliver every
// verdict, cut the connections, and close the pool. When Shutdown
// returns, every goroutine the front created — acceptor, connection
// handlers, verdict waiters, the pool's sessions, the shared scheduler's
// workers — has exited. Idempotent in effect; concurrent calls race
// harmlessly on the same teardown.
func (f *Front) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.draining = true
	conns := make([]*frontConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()

	f.ln.Close()
	<-f.acceptDone
	for _, c := range conns {
		c.fw.send(frameGoaway, goawayMsg{Reason: "draining"})
	}

	// Phase 1: wait for in-flight sessions to finish on their own, up to
	// the caller's deadline.
	done := make(chan struct{})
	go func() { f.sessWG.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Phase 2: out of patience — cancel the stragglers by their
		// session ctx (structured cancellation: they unwind and verdict
		// as canceled) and wait for the verdicts to flush.
		drainErr = ctx.Err()
		for _, c := range conns {
			c.cancelAll(fmt.Errorf("front: drain deadline: %w", context.Cause(ctx)))
		}
		<-done
	}

	// Every session has a verdict on the wire; now the conns can go.
	for _, c := range conns {
		c.nc.Close()
	}
	f.connWG.Wait()
	f.pool.Close()
	return drainErr
}
