package front

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/serve"
)

// Client is the Go client for a Front. One Client owns one TCP
// connection; Submit is safe for concurrent use, and each submission
// returns a *RemoteSession — the remote implementation of
// serve.SessionHandle, so code written against the handle (the load
// generator, operator tooling) drives local and remote sessions
// identically.
type Client struct {
	nc     net.Conn
	fw     *frameWriter
	tenant string

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*RemoteSession
	closed  bool
	goaway  bool
	readErr error
	// readDone is closed when the reader goroutine exits.
	readDone chan struct{}
}

// SubmitRequest describes one remote session.
type SubmitRequest struct {
	// Workload is the registered workload name ("Sieve", "Deadlock", ...).
	Workload string
	// Scale is the workload scale ("small", "default", "paper"); empty
	// selects default.
	Scale string
	// Deadline, when positive, is the session's relative deadline. It is
	// sent as a duration and re-anchored on the server clock, and it is
	// what deadline-aware admission judges.
	Deadline time.Duration
	// Trace requests the session's retained event log back with the
	// verdict (RemoteSession.Trace).
	Trace bool
}

// RemoteSession is a submitted-and-accepted remote session. It
// implements serve.SessionHandle; accessors other than ID, Name, Tenant
// and Done are valid after Wait (or a receive from Done) returns.
type RemoteSession struct {
	c        *Client
	id       uint64
	workload string
	tenant   string

	// admitted carries the synchronous admission answer (nil or the
	// mapped rejection error) from the read loop to Submit.
	admitted chan error

	done    chan struct{}
	err     error
	verdict serve.Verdict
	queue   time.Duration
	dur     time.Duration
	trace   []byte
}

// Dial connects to a Front, performs the version/key handshake, and
// returns a ready Client. The key decides the fairness tenant every
// session on this connection is accounted under.
func Dial(addr, key string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("front: dial %s: %w", addr, err)
	}
	c := &Client{
		nc:       nc,
		fw:       &frameWriter{w: nc},
		pending:  make(map[uint64]*RemoteSession),
		readDone: make(chan struct{}),
	}
	if err := c.fw.send(frameHello, helloMsg{Version: ProtocolVersion, Key: key}); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, body, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("front: handshake: %w", err)
	}
	nc.SetReadDeadline(time.Time{})
	var ack helloAckMsg
	if typ != frameHelloAck || decode(typ, body, &ack) != nil {
		nc.Close()
		return nil, errors.New("front: handshake: expected helloAck")
	}
	if ack.Err != "" {
		nc.Close()
		return nil, fmt.Errorf("front: server refused connection: %s", ack.Err)
	}
	c.tenant = ack.Tenant
	go c.readLoop()
	return c, nil
}

// Tenant returns the fairness tenant the server mapped this client's
// API key to.
func (c *Client) Tenant() string { return c.tenant }

// Submit sends one session to the server and waits for its synchronous
// admission answer. On acceptance the returned RemoteSession's verdict
// arrives asynchronously (Wait/Done); on rejection the error carries
// the same sentinels the local pool uses — errors.Is against
// serve.ErrDeadlineInfeasible, serve.ErrPoolSaturated and
// serve.ErrPoolClosed classifies it. ctx bounds only the wait for the
// admission answer; cancelling an accepted session is Cancel's job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*RemoteSession, error) {
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("front: client closed: %w", serve.ErrPoolClosed)
	}
	if c.goaway {
		c.mu.Unlock()
		return nil, fmt.Errorf("front: server is draining: %w", serve.ErrPoolClosed)
	}
	c.nextID++
	s := &RemoteSession{
		c:        c,
		id:       c.nextID,
		workload: req.Workload,
		tenant:   c.tenant,
		done:     make(chan struct{}),
	}
	s.admitted = make(chan error, 1)
	c.pending[s.id] = s
	c.mu.Unlock()

	msg := submitMsg{ID: s.id, Workload: req.Workload, Scale: req.Scale, Trace: req.Trace}
	if req.Deadline > 0 {
		msg.DeadlineMs = req.Deadline.Milliseconds()
		if msg.DeadlineMs == 0 {
			msg.DeadlineMs = 1
		}
	}
	if err := c.fw.send(frameSubmit, msg); err != nil {
		c.drop(s.id)
		return nil, err
	}
	select {
	case err := <-s.admitted:
		if err != nil {
			c.drop(s.id)
			return nil, err
		}
		return s, nil
	case <-ctx.Done():
		// Best-effort: tell the server we no longer care, keep the
		// pending entry so a late accept/verdict finds a home.
		c.fw.send(frameCancel, cancelMsg{ID: s.id})
		c.drop(s.id)
		return nil, context.Cause(ctx)
	case <-c.readDone:
		c.drop(s.id)
		return nil, fmt.Errorf("front: connection lost: %w", serve.ErrPoolClosed)
	}
}

// Cancel asks the server to cancel an accepted session. Best-effort:
// the session still completes with a verdict (normally "canceled").
func (c *Client) Cancel(s *RemoteSession) error {
	return c.fw.send(frameCancel, cancelMsg{ID: s.id})
}

// Close tears the connection down. In-flight sessions complete locally
// with a connection-lost error and serve.VerdictCanceled.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	<-c.readDone
	return err
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// readLoop is the connection's single reader: it correlates every
// server frame back to its session by id and completes the handles.
func (c *Client) readLoop() {
	defer close(c.readDone)
	var err error
	for {
		var typ byte
		var body []byte
		typ, body, err = readFrame(c.nc)
		if err != nil {
			break
		}
		switch typ {
		case frameAccept:
			var msg acceptMsg
			if decode(typ, body, &msg) != nil {
				err = errors.New("front: corrupt accept")
			} else if s := c.lookup(msg.ID); s != nil {
				s.admitted <- nil
			}
		case frameReject:
			var msg rejectMsg
			if decode(typ, body, &msg) != nil {
				err = errors.New("front: corrupt reject")
			} else if s := c.lookup(msg.ID); s != nil {
				s.admitted <- rejectError(msg)
			}
		case frameVerdict:
			var msg verdictMsg
			if decode(typ, body, &msg) != nil {
				err = errors.New("front: corrupt verdict")
			} else if s := c.take(msg.ID); s != nil {
				s.verdict = parseVerdict(msg.Verdict)
				if msg.Err != "" {
					s.err = &RemoteError{Verdict: s.verdict, Msg: msg.Err}
				}
				s.queue = time.Duration(msg.QueueMs) * time.Millisecond
				s.dur = time.Duration(msg.DurationMs) * time.Millisecond
				s.trace = msg.Trace
				close(s.done)
			}
		case frameGoaway:
			c.mu.Lock()
			c.goaway = true
			c.mu.Unlock()
		default:
			err = fmt.Errorf("front: unexpected frame type %d", typ)
		}
		if err != nil {
			break
		}
	}
	// Connection over: fail whatever is still outstanding.
	c.mu.Lock()
	c.readErr = err
	pending := c.pending
	c.pending = make(map[uint64]*RemoteSession)
	c.mu.Unlock()
	for _, s := range pending {
		select {
		case s.admitted <- fmt.Errorf("front: connection lost: %w", serve.ErrPoolClosed):
		default:
		}
		select {
		case <-s.done:
		default:
			s.err = fmt.Errorf("front: connection lost before verdict: %w", serve.ErrPoolClosed)
			s.verdict = serve.VerdictCanceled
			close(s.done)
		}
	}
}

func (c *Client) lookup(id uint64) *RemoteSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending[id]
}

// take removes and returns the session — verdict is the id's last frame.
func (c *Client) take(id uint64) *RemoteSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.pending[id]
	delete(c.pending, id)
	return s
}

// rejectError maps a wire rejection onto the serving layer's error
// sentinels, so remote and local callers classify identically.
func rejectError(msg rejectMsg) error {
	var sentinel error
	switch msg.Reason {
	case RejectDeadline:
		sentinel = serve.ErrDeadlineInfeasible
	case RejectSaturated:
		sentinel = serve.ErrPoolSaturated
	case RejectDraining:
		sentinel = serve.ErrPoolClosed
	default:
		return fmt.Errorf("front: rejected (%s): %s", msg.Reason, msg.Err)
	}
	return fmt.Errorf("front: rejected (%s): %s: %w", msg.Reason, msg.Err, sentinel)
}

// RemoteError is a session error reconstructed from the wire: the
// server sends the error text, not the value, so only the verdict
// classification survives the crossing — callers route on Verdict (or
// the Msg text), not errors.As.
type RemoteError struct {
	Verdict serve.Verdict
	Msg     string
}

func (e *RemoteError) Error() string { return e.Msg }

func parseVerdict(s string) serve.Verdict {
	for v := serve.Verdict(0); ; v++ {
		if v.String() == s {
			return v
		}
		if v.String() == "unknown" {
			return serve.VerdictFailed
		}
	}
}

// --- RemoteSession: the serve.SessionHandle surface ---

var _ serve.SessionHandle = (*RemoteSession)(nil)

// ID returns the client-assigned, connection-unique session id.
func (s *RemoteSession) ID() uint64 { return s.id }

// Name returns the workload name the session was submitted as.
func (s *RemoteSession) Name() string { return s.workload }

// Tenant returns the fairness tenant (from the connection's API key).
func (s *RemoteSession) Tenant() string { return s.tenant }

// Done returns a channel closed when the session's verdict has arrived
// (or the connection was lost).
func (s *RemoteSession) Done() <-chan struct{} { return s.done }

// Wait blocks until the verdict arrives and returns the session error.
func (s *RemoteSession) Wait() error {
	<-s.done
	return s.err
}

// Err returns the session's error. Valid after Wait/Done.
func (s *RemoteSession) Err() error {
	<-s.done
	return s.err
}

// Verdict returns the classified outcome. Valid after Wait/Done.
func (s *RemoteSession) Verdict() serve.Verdict {
	<-s.done
	return s.verdict
}

// QueueLatency is the server-measured admission wait. Valid after
// Wait/Done. Millisecond granularity: it crosses the wire.
func (s *RemoteSession) QueueLatency() time.Duration {
	<-s.done
	return s.queue
}

// Duration is the server-measured execution time. Valid after
// Wait/Done. Millisecond granularity: it crosses the wire.
func (s *RemoteSession) Duration() time.Duration {
	<-s.done
	return s.dur
}

// Trace returns the session's event log bytes, if requested at Submit.
// Valid after Wait/Done.
func (s *RemoteSession) Trace() []byte {
	<-s.done
	return s.trace
}
