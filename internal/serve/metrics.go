package serve

import (
	"sync/atomic"

	"repro/internal/obs"
)

// tenantLabelCap bounds the tenant label dimension of the per-tenant
// metric families. Tenant names can originate outside the operator's
// configuration — the network front maps API keys to tenants — so the
// label space must not be attacker-growable; the guard folds everything
// past the cap into obs.LabelOverflow.
const tenantLabelCap = 64

// serveMetrics is the serving layer's resolved metric set. The counter
// sites are all control-plane (admission decisions, session completion),
// so unlike core/sched the cost argument here is about cardinality, not
// nanoseconds: per-class verdict counters are pre-resolved from the vec
// at install, and the per-tenant family is keyed by the session's
// fairness tenant, bounded by a LabelGuard — never one series per
// session, and never more than tenantLabelCap+1 series even when tenant
// names arrive from the network.
type serveMetrics struct {
	submitted      *obs.Counter
	rejected       *obs.Counter
	rejectedReason *obs.CounterVec // label: reason (saturated|deadline|closed|dead_ctx)
	inflight       *obs.Gauge
	eventsDropped  *obs.Counter
	verdicts       [verdictCount]*obs.Counter
	tenantVerdict  *obs.CounterVec // labels: tenant, verdict
	tenantGuard    *obs.LabelGuard
}

var serveMet atomic.Pointer[serveMetrics]

func pmet() *serveMetrics { return serveMet.Load() }

func init() {
	obs.OnInstall(func(reg *obs.Registry) {
		if reg == nil {
			serveMet.Store(nil)
			return
		}
		m := &serveMetrics{
			submitted:      reg.Counter("serve_sessions_submitted_total"),
			rejected:       reg.Counter("serve_sessions_rejected_total"),
			rejectedReason: reg.CounterVec("serve_sessions_rejected_by_reason_total", "reason"),
			inflight:       reg.Gauge("serve_sessions_inflight"),
			eventsDropped:  reg.Counter("serve_events_dropped_total"),
			tenantVerdict:  reg.CounterVec("serve_tenant_verdicts_total", "tenant", "verdict"),
			tenantGuard:    obs.NewLabelGuard(tenantLabelCap),
		}
		vec := reg.CounterVec("serve_verdicts_total", "class")
		for v := Verdict(0); v < verdictCount; v++ {
			m.verdicts[v] = vec.With(v.String())
		}
		serveMet.Store(m)
	})
}

// boundTenantLabel resolves a tenant name to its metric label through the
// installed cardinality guard; with no registry installed the name passes
// through (nothing records it).
func boundTenantLabel(tenant string) string {
	if m := pmet(); m != nil {
		return m.tenantGuard.Bound(tenant)
	}
	return tenant
}

// countVerdict records a completed session's outcome, by class and by
// (guard-bounded) tenant label.
func (m *serveMetrics) countVerdict(tlabel string, v Verdict) {
	m.verdicts[v].Inc()
	m.tenantVerdict.With(tlabel, v.String()).Inc()
}
