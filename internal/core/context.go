package core

// Context-first cancellation for the promise runtime.
//
// The paper's policy guarantees that every blocked Get is eventually
// resolved by the PROGRAM — a value, a broken-promise error, or a
// deadlock alarm. A serving deployment additionally needs the CALLER to
// be able to give up: request deadlines, client disconnects, graceful
// drain. This file threads context.Context through the blocking surface:
//
//   - RunContext(ctx, main) runs a program under a cancellation scope.
//     Cancelling ctx is structured cancellation of the root task: every
//     descendant blocked in a policy-checked wait unblocks promptly with
//     a CanceledError, tasks unwind returning those errors, and the
//     ownership policy reports omitted sets with blame on the way down
//     (leaked promises cascade exceptionally, exactly as for any other
//     failing task). RunContext waits for the tree to unwind, so when it
//     returns the runtime owns no goroutines.
//   - GetContext / AwaitContext / blockOn cover a single wait: the
//     per-call ctx and the run scope are both armed while the task is
//     parked, and whichever ends first aborts the wait.
//   - RunDetached(ctx, main) is the comparator/demo variant: when ctx
//     ends first it returns WITHOUT cancelling, leaving the task tree
//     frozen (blocked tasks stay blocked) so hangs can be snapshotted.
//     This is the historical RunWithTimeout contract.
//
// Cancellation is NOT an alarm. It proves nothing about the program —
// the precise detector keeps its alarm-iff-deadlock guarantee, and a
// cancelled waiter abandons its wait without touching the promise's
// packed state word: the wake gate's installed channel simply goes
// unread (a later Set closes it for nobody, which is harmless). The
// trace closes the block with an EvWake "cancel" record, so offline
// verification still sees every block/wake pair matched.
//
// Cost: the uncancelled fast path is untouched — ctx state is consulted
// only on the slow path (the wait was not already fulfilled), and the
// no-scope case is a nil check plus one atomic pointer load before the
// same blocking receive as before. Nothing is allocated for a wait that
// is never cancelled.

import (
	"context"
	"sync/atomic"
)

// runScope is the active run-level cancellation scope, installed by
// RunContext for the duration of one run. Loaded (never mutated) by every
// blocking wait, so abandoned goroutines from a detached run can keep
// reading it race-free.
type runScope struct {
	ctx  context.Context
	done <-chan struct{}
}

// runScopePtr lives on the Runtime; see Runtime.run in runtime.go.
type runScopePtr = atomic.Pointer[runScope]

// RunContext is Run under a cancellation scope. It executes main as the
// root task and blocks until every task spawned (transitively) has
// terminated — including after cancellation: cancelling ctx unblocks
// every policy-checked wait in the tree with a CanceledError (structured
// cancellation of the root task), the tasks unwind cooperatively, and
// RunContext then returns the joined errors with the scope's
// CanceledError first. If the scope expired without disturbing a single
// wait — the program ran to completion anyway — the result is reported
// exactly as Run would have (fulfilment beats cancellation at the run
// level too).
//
// Cancellation is cooperative: a task blocked in Get/Await (or any
// context-accepting wait) aborts promptly; a task that is computing, or
// blocked outside the promise runtime, is not interrupted and delays the
// unwind until it next returns or waits. For a hard deadline that
// abandons a wedged tree instead of waiting, see RunDetached.
//
// A ctx that can never be cancelled (context.Background) selects the
// plain Run path with zero added cost.
func (r *Runtime) RunContext(ctx context.Context, main TaskFunc) error {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	if done == nil {
		return r.Run(main)
	}
	if ctx.Err() != nil {
		// Cancelled before the root task ever started: nothing ran.
		return &CanceledError{Cause: context.Cause(ctx)}
	}
	// The store is sequenced before the root task's goroutine starts
	// (inside Run), which is the happens-before edge making the scope
	// visible to every task in the tree without per-wait synchronization
	// beyond the pointer load.
	r.runWaitsCanceled.Store(false)
	r.run.Store(&runScope{ctx: ctx, done: done})
	err := r.Run(main)
	r.run.Store(nil)
	// Join the scope's CanceledError only if the cancellation actually
	// disturbed the run (some wait aborted through the scope). A program
	// that completed every wait normally is reported as it finished, even
	// when ctx expired at the very end — the run-level analogue of an
	// already-fulfilled promise returning its payload under a dead ctx.
	// (Tasks that observed the cancellation themselves — via Task.Context
	// or a per-call ctx — still surface it through err as usual.)
	if r.runWaitsCanceled.Load() {
		err = joinErrs(&CanceledError{Cause: context.Cause(ctx)}, err)
	}
	return err
}

// RunDetached runs main and gives up — without cancelling — if ctx ends
// first: it returns the scope's cause joined with the errors recorded so
// far, leaving the task tree exactly as it stands. Blocked tasks stay
// blocked and their goroutines are abandoned (they cannot be killed), so
// a hang under the weaker modes can be snapshotted (Runtime.Snapshot /
// DOT) or simply demonstrated. This is the comparator the §1 timeout
// discussion needs: an inconclusive deadline, not detection — and not
// cancellation either, which would destroy the very evidence of the hang.
//
// A runtime abandoned by RunDetached must not be reused.
func (r *Runtime) RunDetached(ctx context.Context, main TaskFunc) error {
	if ctx == nil || ctx.Done() == nil {
		return r.Run(main)
	}
	if err := ctx.Err(); err != nil {
		return joinErrs(context.Cause(ctx), r.Err())
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(main) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return joinErrs(context.Cause(ctx), r.Err())
	}
}

// Context returns the cancellation scope this task's run executes under:
// the ctx given to Runtime.RunContext, or context.Background() when the
// run cannot be cancelled. Compute-bound task bodies poll it (ctx.Err, or
// select on ctx.Done) to participate in structured cancellation — blocked
// waits abort on their own, but a loop that never blocks must cooperate,
// and I/O done inside a task should be bounded by this ctx.
func (t *Task) Context() context.Context {
	if rs := t.rt.run.Load(); rs != nil {
		return rs.ctx
	}
	return context.Background()
}

// canceled reports the cancellation error a wait by t on s must fail
// with — the per-call ctx first, then the run scope — or nil when
// neither has ended. It is the wait's fail-fast check: a wait that
// begins after cancellation never blocks, never logs a block/wake pair,
// and never publishes a waits-for edge.
func (r *Runtime) canceled(t *Task, s *pstate, ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		if s.state.Load() == stateFulfilled {
			return nil // a Set raced the caller's fulfilled check: value wins
		}
		return newCanceledError(t, s, context.Cause(ctx))
	}
	if rs := r.run.Load(); rs != nil && rs.ctx.Err() != nil {
		if s.state.Load() == stateFulfilled {
			return nil
		}
		r.runWaitsCanceled.Store(true)
		return newCanceledError(t, s, context.Cause(rs.ctx))
	}
	return nil
}

// blockOn parks the calling task on s's wake gate until fulfilment or
// cancellation, whichever is first. nil means the gate admitted the
// task: the promise is fulfilled and the payload visible (the same
// acquire ordering as the plain receive). A non-nil CanceledError means
// the wait was abandoned; the promise and its packed state word are
// untouched, and the caller owns the cleanup of its waits-for edge.
//
// With no per-call ctx and no run scope this is exactly the historical
// blocking receive; a select with the armed subset runs otherwise (a nil
// channel never fires).
func (r *Runtime) blockOn(t *Task, s *pstate, ctx context.Context) error {
	if m := cmet(); m != nil {
		m.blocks.Inc()
	}
	var callDone <-chan struct{}
	if ctx != nil {
		callDone = ctx.Done()
	}
	rs := r.run.Load()
	var runDone <-chan struct{}
	if rs != nil {
		runDone = rs.done
	}
	if callDone == nil && runDone == nil {
		<-s.wake.wait()
		return nil
	}
	select {
	case <-s.wake.wait():
		return nil
	case <-callDone:
		// Fulfilment beats cancellation even when the two race: if the
		// publish landed before this load, the value is there and the
		// acquire semantics are identical to the wake path — report it.
		if s.state.Load() == stateFulfilled {
			return nil
		}
		return newCanceledError(t, s, context.Cause(ctx))
	case <-runDone:
		if s.state.Load() == stateFulfilled {
			return nil
		}
		r.runWaitsCanceled.Store(true)
		return newCanceledError(t, s, context.Cause(rs.ctx))
	}
}
