package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestTaskPoolingSpawnJoin churns thousands of sequential spawns with
// pooling on: every join goes through a promise (the supported pattern),
// values must flow correctly through recycled Task handles.
func TestTaskPoolingSpawnJoin(t *testing.T) {
	for _, mode := range []Mode{Unverified, Ownership, Full} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode), WithTaskPooling(true))
			err := rt.Run(func(root *Task) error {
				for i := 0; i < 5000; i++ {
					p := NewPromise[int](root)
					if _, err := root.Async(func(c *Task) error {
						return p.Set(c, i)
					}, p); err != nil {
						return err
					}
					v, err := p.Get(root)
					if err != nil {
						return err
					}
					if v != i {
						t.Fatalf("round %d delivered %d", i, v)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTaskPoolingWaitStaysSafe: a Wait that engages the done gate before
// the task terminates is legitimate even under pooling — the runtime must
// not recycle a watched handle out from under the waiter, and the waiter
// must see the task's real error, never a scrubbed or recycled one. Run
// with -race: the original bug was a data race between Wait's err read
// and releaseTask's scrub.
//
// The test is white-box about ordering: it holds the child in its body
// until the waiter has observably begun its Wait (the sticky waited
// flag), which is exactly the "Wait began before termination" condition
// WithTaskPooling guarantees. Both admission paths get exercised across
// the rounds — waiters that install a channel and waiters that land
// after the signal and are admitted via the gate's sentinel. (A Wait
// that starts only after the task exited remains undefined under
// pooling, as documented.)
func TestTaskPoolingWaitStaysSafe(t *testing.T) {
	rt := NewRuntime(WithMode(Unverified), WithTaskPooling(true))
	sentinel := errors.New("child failed on purpose")
	err := rt.Run(func(root *Task) error {
		for i := 0; i < 2000; i++ {
			release := make(chan struct{})
			child, err := root.Async(func(c *Task) error {
				<-release
				return sentinel
			})
			if err != nil {
				return err
			}
			got := make(chan error, 1)
			go func() { got <- child.Wait() }()
			for !child.waited.Load() {
				runtime.Gosched() // waiter has not begun its Wait yet
			}
			close(release) // now the child may terminate
			if e := <-got; !errors.Is(e, sentinel) {
				t.Fatalf("round %d: Wait returned %v, want the child's error", i, e)
			}
		}
		return nil
	})
	// Every child deliberately failed; Run reports the joined errors.
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("run error = %v, want joined child failures", err)
	}
}

// TestTaskPoolingKeepsDetectorPrecise first churns the pool so later
// spawns run on recycled handles, then forms a genuine 2-cycle: the
// detector must still name it (no missed cycle), and the churn phase must
// not have produced any alarms (no false alarms from stale pointers).
func TestTaskPoolingKeepsDetectorPrecise(t *testing.T) {
	var deadlocks atomic.Int32
	rt := NewRuntime(WithMode(Full), WithTaskPooling(true), WithAlarmHandler(func(err error) {
		var de *DeadlockError
		if errors.As(err, &de) {
			deadlocks.Add(1)
		}
	}))
	err := rt.Run(func(root *Task) error {
		for i := 0; i < 1000; i++ {
			p := NewPromise[struct{}](root)
			if _, err := root.Async(func(c *Task) error {
				return p.Set(c, struct{}{})
			}, p); err != nil {
				return err
			}
			if _, err := p.Get(root); err != nil {
				return err
			}
		}
		if n := deadlocks.Load(); n != 0 {
			t.Fatalf("churn phase raised %d deadlock alarms", n)
		}
		pa := NewPromiseNamed[int](root, "pa")
		pb := NewPromiseNamed[int](root, "pb")
		if _, err := root.AsyncNamed("c1", func(c *Task) error {
			if _, err := pb.Get(c); err != nil {
				return err
			}
			return pa.Set(c, 1)
		}, pa); err != nil {
			return err
		}
		if _, err := root.AsyncNamed("c2", func(c *Task) error {
			if _, err := pa.Get(c); err != nil {
				return err
			}
			return pb.Set(c, 2)
		}, pb); err != nil {
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("cycle not reported")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("run error carries no DeadlockError: %v", err)
	}
	if deadlocks.Load() == 0 {
		t.Fatal("alarm handler never saw the deadlock")
	}
}
