package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// cancellableProg blocks its root on a promise that is fulfilled only
// when the session's cancellation scope ends: the child polls the run
// scope (Task.Context) and sets the promise on its way out, so the whole
// tree unwinds cooperatively and the session's only possible outcomes
// are clean (never here — nothing else fulfils it) or canceled.
func cancellableProg(root *core.Task) error {
	p := core.NewPromise[int](root)
	if _, err := root.Async(func(c *core.Task) error {
		for c.Context().Err() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		// Give the root's canceled wait a decisive head start before the
		// farewell fulfilment, so the session deterministically reports
		// the cancellation rather than racing it with the late value.
		time.Sleep(20 * time.Millisecond)
		return p.Set(c, 0) // fulfil on the way out: cancellation, not omission
	}, p); err != nil {
		return err
	}
	_, err := p.Get(root) // aborts with a CanceledError when the scope ends
	return err
}

func TestSubmitCtxCancelMidFlight(t *testing.T) {
	pool := NewPool(Config{MaxSessions: 2, Runtime: []core.Option{core.WithMode(core.Full)}})
	defer pool.Close()
	ctx, cancel := context.WithCancel(t.Context())
	s, err := pool.Submit(ctx, "victim", cancellableProg)
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, pool, 1)
	cancel()
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("canceled session did not finish")
	}
	if got := s.Verdict(); got != VerdictCanceled {
		t.Fatalf("verdict %s, want canceled (err: %v)", got, s.Err())
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("session error %v does not unwrap to context.Canceled", s.Err())
	}
	if ps := pool.Stats(); ps.Canceled != 1 {
		t.Fatalf("pool canceled count %d, want 1", ps.Canceled)
	}
}

func TestSubmitCtxCancelWhileQueued(t *testing.T) {
	pool := NewPool(Config{MaxSessions: 1, QueueDepth: 2})
	defer pool.Close()
	gate := make(chan struct{})
	first, err := pool.Submit(t.Context(), "first", func(tk *core.Task) error { <-gate; return nil })
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, pool, 1)
	ctx, cancel := context.WithCancel(t.Context())
	queued, err := pool.Submit(ctx, "queued", cleanProg)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The queued session must abort while the only slot is still held.
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("queued session did not abort on ctx cancel")
	}
	if got := queued.Verdict(); got != VerdictCanceled {
		t.Fatalf("verdict %s, want canceled (err: %v)", got, queued.Err())
	}
	var ce *core.CanceledError
	if !errors.As(queued.Err(), &ce) {
		t.Fatalf("queued session error %v, want CanceledError", queued.Err())
	}
	if st, ok := queued.Stats(); !ok || st.Tasks != 0 {
		t.Fatalf("aborted-in-queue session stats = %+v (ok=%v), want zero stats ready", st, ok)
	}
	close(gate)
	if err := first.Wait(); err != nil {
		t.Fatalf("running session failed: %v", err)
	}
}

func TestSubmitRejectsDeadContext(t *testing.T) {
	pool := NewPool(Config{MaxSessions: 1})
	defer pool.Close()
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := pool.Submit(ctx, "doa", cleanProg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit on a dead ctx = %v, want context.Canceled", err)
	}
	if ps := pool.Stats(); ps.Rejected != 1 || ps.Submitted != 0 {
		t.Fatalf("stats: rejected=%d submitted=%d, want 1/0", ps.Rejected, ps.Submitted)
	}
}

func TestPerSessionRuntimeOptionOverride(t *testing.T) {
	// The pool's base options are a default, not a cage: a per-Submit
	// option lands after the base list, so it wins. Same omitted-set
	// program, two verdicts.
	pool := NewPool(Config{MaxSessions: 2, Runtime: []core.Option{core.WithMode(core.Full)}})
	defer pool.Close()
	omit := func(root *core.Task) error {
		core.NewPromise[int](root) // owned, never set
		return nil
	}
	strict, err := pool.Submit(t.Context(), "strict", omit)
	if err != nil {
		t.Fatal(err)
	}
	lax, err := pool.Submit(t.Context(), "lax", omit, WithRuntime(core.WithMode(core.Unverified)))
	if err != nil {
		t.Fatal(err)
	}
	strict.Wait()
	lax.Wait()
	if got := strict.Verdict(); got != VerdictPolicy {
		t.Errorf("base-option session: verdict %s, want policy", got)
	}
	if got := lax.Verdict(); got != VerdictClean {
		t.Errorf("override session: verdict %s, want clean (err: %v)", got, lax.Err())
	}
}

// TestCancelMidFlightStealHeavyExactAccounting is the ctx redesign's
// serving-layer stress contract, run under -race by the tier-1 suite:
// sessions spawning promise-joined task fans over the shared
// work-stealing scheduler are cancelled at random points mid-flight, and
// afterwards (1) every session classifies as clean or canceled — never a
// false deadlock or policy verdict, (2) no session dropped trace events,
// (3) the per-session scheduler accounting is exact (submitted tasks all
// finished, none lost across steals), and (4) Pool.Close releases every
// goroutine.
func TestCancelMidFlightStealHeavyExactAccounting(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool(Config{
		MaxSessions: 16,
		QueueDepth:  16,
		Runtime:     []core.Option{core.WithMode(core.Full), core.WithEventLog(4096)},
	})

	// A spawn-join fan: enough concurrent small tasks per session that the
	// scheduler's thieves redistribute them across workers while the
	// cancellations land at arbitrary points of the tree.
	fan := func(root *core.Task) error {
		for round := 0; round < 4; round++ {
			var ps []*core.Promise[int]
			for i := 0; i < 8; i++ {
				p := core.NewPromise[int](root)
				ps = append(ps, p)
				if _, err := root.Async(func(c *core.Task) error {
					time.Sleep(50 * time.Microsecond)
					return p.Set(c, 1)
				}, p); err != nil {
					return err
				}
			}
			for _, p := range ps {
				if _, err := p.Get(root); err != nil {
					return err
				}
			}
		}
		return nil
	}

	const n = 32
	rng := rand.New(rand.NewSource(7))
	sessions := make([]*Session, n)
	cancels := make([]context.CancelFunc, n)
	for i := range sessions {
		ctx, cancel := context.WithCancel(t.Context())
		cancels[i] = cancel
		s, err := pool.Submit(ctx, fmt.Sprintf("steal-%d", i), fan)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions[i] = s
		// Cancel a prior session at a random point while later ones are
		// still being admitted — mid-queue, mid-run, or already done.
		victim := rng.Intn(i + 1)
		if rng.Intn(2) == 0 {
			cancels[victim]()
		}
	}
	for _, c := range cancels {
		c()
	}

	canceled := 0
	for i, s := range sessions {
		if err := s.Wait(); err != nil && s.Verdict() != VerdictCanceled {
			t.Errorf("session %d: err %v with verdict %s", i, err, s.Verdict())
		}
		switch v := s.Verdict(); v {
		case VerdictClean:
		case VerdictCanceled:
			canceled++
		default:
			// A cancellation must never be misread as a deadlock or a
			// policy conviction — that is the "false verdict" this test
			// exists to catch.
			t.Errorf("session %d: false verdict %s (err: %v)", i, v, s.Err())
		}
		if s.Runtime() == nil {
			continue // aborted in the queue: no runtime, no tasks
		}
		st, ok := s.Stats()
		if !ok {
			t.Fatalf("session %d: Stats not ready after Wait", i)
		}
		if st.EventsDropped != 0 {
			t.Errorf("session %d: %d dropped trace events", i, st.EventsDropped)
		}
		// Exact tenant accounting: every task the session submitted to the
		// shared scheduler ran and finished, steals notwithstanding.
		submitted, inflight := s.SchedStats()
		if inflight != 0 {
			t.Errorf("session %d: %d tasks still in flight after Wait", i, inflight)
		}
		if submitted != st.Tasks {
			t.Errorf("session %d: tenant submitted %d, runtime ran %d", i, submitted, st.Tasks)
		}
		if err := s.Runtime().TraceClose(); err != nil {
			t.Errorf("session %d: TraceClose: %v", i, err)
		}
	}
	t.Logf("%d/%d sessions canceled mid-flight", canceled, n)

	ps := pool.Stats()
	if ps.Completed != n {
		t.Errorf("completed %d sessions, want %d", ps.Completed, n)
	}
	if ps.Canceled != int64(canceled) {
		t.Errorf("pool canceled count %d, sessions observed %d", ps.Canceled, canceled)
	}
	if ps.EventsDropped != 0 {
		t.Errorf("pool dropped %d events", ps.EventsDropped)
	}

	pool.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked through Pool.Close: %d, baseline %d", runtime.NumGoroutine(), before)
}
