// Package collections builds higher-level synchronization primitives on
// top of the promise core, demonstrating the paper's object-oriented
// promise movement (§6.1): a composite object that implements
// core.Movable (the paper's PromiseCollection) moves all of its
// constituent promises when handed to a child task, so the object itself
// feels movable even though its promise population changes over time.
//
//   - Channel is the paper's Listing 4: a reusable promise chain where the
//     nth Recv obtains the value of the nth Send. Moving the channel moves
//     its current producer promise — the sending end travels between tasks
//     without breaking the abstraction. Used by the Conway and Heat
//     benchmarks in place of MPI primitives.
//   - Future binds a promise to a task's return value (the async API of
//     §1.1 expressed with the synchronous one). Used by Strassen.
//   - Finish awaits the termination of a set of spawned tasks, the
//     X10/Habanero join that the paper implements with promises for QSort.
//   - Barrier is an all-to-all promise dependence pattern replacing the
//     OpenMP barriers of StreamCluster; AllToOne is the reduced
//     synchronization variant used by StreamCluster2.
//   - Rendezvous is the §7 future-work primitive: a synchronous value
//     exchange between two tasks built from a pair of promises.
package collections
