// Command figure1 regenerates Figure 1 of the paper: per-benchmark mean
// execution times with 95% confidence intervals for the baseline and the
// verified configuration, rendered as ASCII bars (and optionally CSV for
// external plotting).
//
// Usage:
//
//	figure1 [-scale small|default|paper] [-reps N] [-warmups N]
//	        [-bench name] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "default", "workload scale: small, default, paper")
	reps := flag.Int("reps", 0, "timed repetitions (0 = protocol default)")
	warmups := flag.Int("warmups", -1, "discarded warm-up runs (-1 = protocol default)")
	benchFlag := flag.String("bench", "", "run only the named benchmark (comma-separated list)")
	csv := flag.Bool("csv", false, "emit CSV instead of the ASCII figure")
	flag.Parse()

	scale := workloads.ParseScale(*scaleFlag)
	opts := harness.DefaultOptions()
	if scale == workloads.ScalePaper {
		opts = harness.PaperOptions()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *warmups >= 0 {
		opts.Warmups = *warmups
	}

	entries := workloads.All()
	if *benchFlag != "" {
		var sel []workloads.Entry
		for _, name := range strings.Split(*benchFlag, ",") {
			e, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(2)
			}
			sel = append(sel, e)
		}
		entries = sel
	}

	var rows []harness.Row
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "[%s] timing %s...\n", time.Now().Format("15:04:05"), e.Name)
		prog := e.Prog(scale)
		baseRT := func() *core.Runtime { return core.NewRuntime(core.WithMode(core.Unverified)) }
		verRT := func() *core.Runtime { return core.NewRuntime(core.WithMode(core.Full)) }
		bt, err := harness.MeasureTime(baseRT, prog, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %v\n", err)
			os.Exit(1)
		}
		vt, err := harness.MeasureTime(verRT, prog, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %v\n", err)
			os.Exit(1)
		}
		rows = append(rows, harness.Row{
			Name:        e.Name,
			BaselineSec: bt.Mean(), BaselineCI: bt.CI(),
			VerifiedSec: vt.Mean(), VerifiedCI: vt.CI(),
		})
	}

	if *csv {
		fmt.Print("benchmark,baseline_s,baseline_ci95,verified_s,verified_ci95\n")
		for _, r := range rows {
			fmt.Printf("%s,%.6f,%.6f,%.6f,%.6f\n", r.Name, r.BaselineSec, r.BaselineCI, r.VerifiedSec, r.VerifiedCI)
		}
		return
	}
	fmt.Print(harness.RenderFigure1(rows))
}
