package graph

import (
	"time"

	"repro/internal/serve"
)

// NodeState is a node's lifecycle position. Every node of a finished
// graph is in exactly one of the three terminal states — a node left
// Pending or Running after Run returns would be an orphan, the
// invariant cmd/loadgen's -graph harness asserts never happens.
type NodeState uint8

const (
	// NodePending: declared, at least one input still unresolved; no
	// session submitted, no pool slot held.
	NodePending NodeState = iota
	// NodeRunning: at least one attempt submitted (queued or executing).
	NodeRunning
	// NodeSucceeded: terminal — an attempt reached a clean verdict and
	// the node's future is fulfilled with its output.
	NodeSucceeded
	// NodeFailed: terminal — the retry budget was exhausted on failing
	// verdicts (deadlock, policy, failure, attempt timeout).
	NodeFailed
	// NodeCanceled: terminal — the node never got to a verdict of its
	// own: an upstream failure cascaded into it (err is *ErrUpstream),
	// the graph context ended, or the pool closed under it.
	NodeCanceled

	nodeStateCount = iota
)

// String returns the state name used in reports and metric labels.
func (s NodeState) String() string {
	switch s {
	case NodePending:
		return "pending"
	case NodeRunning:
		return "running"
	case NodeSucceeded:
		return "succeeded"
	case NodeFailed:
		return "failed"
	case NodeCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is one of the three run outcomes.
func (s NodeState) Terminal() bool {
	return s == NodeSucceeded || s == NodeFailed || s == NodeCanceled
}

// NodeResult is one node's terminal record in a GraphResult.
type NodeResult struct {
	Name  string    `json:"name"`
	State NodeState `json:"-"`
	// StateName is State rendered for JSON reports.
	StateName string `json:"state"`
	// Verdict is the last completed attempt's session verdict. For a
	// node canceled before any session completed it is VerdictCanceled.
	Verdict serve.Verdict `json:"-"`
	// Attempts counts sessions submitted for the node (admission-
	// saturation retries excluded: those never consumed an attempt).
	Attempts int `json:"attempts"`
	// BodyRuns counts body executions — the exactly-once evidence. A
	// session canceled while still queued increments Attempts but not
	// BodyRuns.
	BodyRuns int64 `json:"body_runs"`
	// Err is the terminal error: nil for success, the last attempt's
	// error for failure, an *ErrUpstream (or the graph-level cause) for
	// cancellation.
	Err error `json:"-"`
	// Output is the body's returned value for a succeeded node.
	Output any       `json:"-"`
	Start  time.Time `json:"-"`
	End    time.Time `json:"-"`
	// Duration spans first submission to terminal outcome, retries and
	// backoff included; zero for nodes canceled before submission.
	Duration time.Duration `json:"duration_ns"`
}

// GraphResult is the outcome of one Graph.Run: a terminal NodeResult
// per node plus the aggregate and critical-path accounting.
type GraphResult struct {
	Graph   string        `json:"graph"`
	Start   time.Time     `json:"-"`
	End     time.Time     `json:"-"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Nodes map[string]NodeResult `json:"-"`

	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`

	// Retries counts attempts beyond each node's first; AdmissionRetries
	// counts saturated submissions re-tried without consuming attempts.
	Retries          int64 `json:"retries"`
	AdmissionRetries int64 `json:"admission_retries"`

	// CriticalPath is the dependency chain with the largest summed node
	// duration among nodes that ran, root first; CriticalPathTime is
	// that sum. With perfect parallelism and a free pool the graph
	// cannot finish faster than this — the gap between it and Elapsed
	// is queueing plus scheduling overhead.
	CriticalPath     []string      `json:"critical_path"`
	CriticalPathTime time.Duration `json:"critical_path_ns"`

	// Err is nil iff every node succeeded; otherwise the root failure:
	// the first node error that triggered a cascade (never one of the
	// cascade's own ErrUpstream entries).
	Err error `json:"-"`
}

// OK reports whether every node succeeded.
func (r *GraphResult) OK() bool { return r.Err == nil && r.Failed == 0 && r.Canceled == 0 }

// Output returns a succeeded node's output value.
func (r *GraphResult) Output(node string) (any, bool) {
	nr, ok := r.Nodes[node]
	if !ok || nr.State != NodeSucceeded {
		return nil, false
	}
	return nr.Output, true
}

// criticalPath computes the longest-duration dependency chain over the
// nodes that actually ran, walking the declaration order (topological
// by construction). Canceled nodes contribute zero duration but still
// propagate their ancestors' path, so a graph whose sink was cascade-
// canceled still reports the failed spine that doomed it.
func criticalPath(g *Graph, res map[string]NodeResult) ([]string, time.Duration) {
	if len(g.order) == 0 {
		return nil, 0
	}
	finish := make(map[string]time.Duration, len(g.order))
	prev := make(map[string]string, len(g.order))
	var bestNode string
	var best time.Duration = -1
	for _, n := range g.order {
		var upBest time.Duration
		up := ""
		for _, dep := range n.deps {
			if f := finish[dep]; up == "" || f > upBest {
				upBest, up = f, dep
			}
		}
		f := upBest + res[n.name].Duration
		finish[n.name] = f
		prev[n.name] = up
		if f > best {
			best, bestNode = f, n.name
		}
	}
	var path []string
	for at := bestNode; at != ""; at = prev[at] {
		path = append(path, at)
	}
	// Reverse into root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best
}
