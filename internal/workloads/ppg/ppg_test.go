package ppg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/testutil"
)

func TestSequentialIsFiniteAndMoves(t *testing.T) {
	cfg := Small()
	z := RunSequential(cfg)
	moved := false
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("iterate diverged: %v", z)
		}
		if v != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("iterate never left the origin")
	}
}

func TestSingleSessionMatchesSequential(t *testing.T) {
	cfg := Small()
	rt := core.NewRuntime(core.WithMode(core.Full))
	var got []float64
	testutil.MustSucceed(t, rt, func(tk *core.Task) error {
		var err error
		got, err = Run(tk, cfg)
		return err
	})
	want := RunSequential(cfg)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("iterate[%d] = %v, want %v (not bitwise identical)", j, got[j], want[j])
		}
	}
}

func TestGraphMatchesSequential(t *testing.T) {
	cfg := Small()
	pool := serve.NewPool(serve.Config{
		MaxSessions: 6,
		QueueDepth:  32,
		Runtime:     []core.Option{core.WithMode(core.Full)},
	})
	defer pool.Close()
	g, check := BuildGraph(cfg)
	if want := cfg.Iters * (cfg.Blocks + 1); g.Len() != want {
		t.Fatalf("graph has %d nodes, want %d (Blocks+1 per round)", g.Len(), want)
	}
	res, err := g.Run(t.Context(), pool)
	if err != nil {
		t.Fatalf("graph run: %v", err)
	}
	if err := check(res); err != nil {
		t.Fatal(err)
	}
}
