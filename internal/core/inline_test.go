package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestInlineRunsToCompletion: a non-blocking body executes synchronously
// on the caller's goroutine — it has completed before AsyncInline
// returns, under every mode.
func TestInlineRunsToCompletion(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode))
			err := run(t, rt, func(tk *Task) error {
				p := NewPromise[int](tk)
				ran := false // same goroutine when inline: a plain bool suffices
				if _, e := tk.AsyncInline(func(c *Task) error {
					ran = true
					return p.Set(c, 7)
				}, p); e != nil {
					return e
				}
				if !ran {
					return errors.New("body did not run during AsyncInline")
				}
				v, e := p.Get(tk)
				if e != nil {
					return e
				}
				if v != 7 {
					return fmt.Errorf("got %d, want 7", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInlineMigratesCleanBlock: a body whose FIRST action is a wait that
// cannot be satisfied while the caller is captive must abort the inline
// attempt and restart on its own goroutine — the body runs exactly twice
// and the program completes.
func TestInlineMigratesCleanBlock(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode))
			var entries atomic.Int32
			err := run(t, rt, func(tk *Task) error {
				p := NewPromise[int](tk)
				r := NewPromise[int](tk)
				if _, e := tk.AsyncInline(func(c *Task) error {
					entries.Add(1)
					v, e := p.Get(c) // clean block: p is only settable by the captive caller
					if e != nil {
						return e
					}
					return r.Set(c, v+1)
				}, r); e != nil {
					return e
				}
				if e := p.Set(tk, 41); e != nil {
					return e
				}
				v, e := r.Get(tk)
				if e != nil {
					return e
				}
				if v != 42 {
					return fmt.Errorf("got %d, want 42", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := entries.Load(); n != 2 {
				t.Fatalf("body ran %d times, want 2 (inline attempt + scheduled restart)", n)
			}
		})
	}
}

// TestInlineDirtyCommitCompletes: a body that goes dirty (creates a
// promise) and then blocks must commit the wait on the borrowed
// goroutine — no restart — and complete once a scheduled sibling
// fulfils the awaited promise.
func TestInlineDirtyCommitCompletes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode))
			var entries atomic.Int32
			err := run(t, rt, func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "p")
				q := NewPromiseNamed[int](tk, "q")
				if _, e := tk.AsyncNamed("setter", func(c *Task) error {
					return p.Set(c, 10)
				}, p); e != nil {
					return e
				}
				if _, e := tk.AsyncInlineNamed("child", func(c *Task) error {
					entries.Add(1)
					inner := NewPromise[int](c) // dirty: the prefix is no longer restartable
					v, e := p.Get(c)
					if e != nil {
						return e
					}
					if e := inner.Set(c, v); e != nil {
						return e
					}
					w, e := inner.Get(c)
					if e != nil {
						return e
					}
					return q.Set(c, w*2)
				}, q); e != nil {
					return e
				}
				v, e := q.Get(tk)
				if e != nil {
					return e
				}
				if v != 20 {
					return fmt.Errorf("got %d, want 20", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := entries.Load(); n != 1 {
				t.Fatalf("dirty body ran %d times, want exactly 1", n)
			}
		})
	}
}

// TestInlineDirtyHostEdgeDeadlock is the precision obligation for the
// committed wait: a dirty inline child blocking on a promise its HOST
// owns is a genuine deadlock of this execution (the host's goroutine is
// captive), and the detector must alarm with the precise one-hop cycle
// [main awaits p] instead of hanging — under both detectors.
func TestInlineDirtyHostEdgeDeadlock(t *testing.T) {
	for _, det := range detectorConfigs() {
		t.Run(det.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(Full), WithDetector(det))
			err := run(t, rt, func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "p")
				q := NewPromiseNamed[int](tk, "q")
				if _, e := tk.AsyncInlineNamed("child", func(c *Task) error {
					_ = NewPromise[int](c) // dirty: forces the wait to commit
					_, e := p.Get(c)       // p is owned by the captive host: deadlock
					if e == nil {
						return errors.New("Get on host-owned promise returned nil")
					}
					if se := q.Set(c, 1); se != nil {
						return se
					}
					return e
				}, q); e != nil {
					return e
				}
				// The child completed inline (with the deadlock error); the
				// caller is released and can still use its promise.
				if e := p.Set(tk, 1); e != nil {
					return e
				}
				if _, e := q.Get(tk); e != nil {
					return e
				}
				return nil
			})
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("err = %v, want DeadlockError", err)
			}
			if len(dl.Cycle) != 1 {
				t.Fatalf("cycle length %d, want 1: %v", len(dl.Cycle), dl)
			}
			if dl.Cycle[0].TaskName != "main" || dl.Cycle[0].PromiseLabel != "p" {
				t.Fatalf("cycle = %v, want [main awaits p]", dl.Cycle)
			}
		})
	}
}

// TestInlineTransitiveDeadlock: the captive host participates in a cycle
// THROUGH another scheduled task — main is captive under the child's wait
// on p, p is owned by sib, sib waits on g, g is owned by main. Whichever
// side publishes its edge last must alarm with the full two-hop cycle
// {main awaits p, sib awaits g}.
func TestInlineTransitiveDeadlock(t *testing.T) {
	for _, det := range detectorConfigs() {
		t.Run(det.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(Full), WithDetector(det))
			err := run(t, rt, func(tk *Task) error {
				g := NewPromiseNamed[int](tk, "g")
				p := NewPromiseNamed[int](tk, "p")
				q := NewPromiseNamed[int](tk, "q")
				if _, e := tk.AsyncNamed("sib", func(c *Task) error {
					v, e := g.Get(c)
					if e != nil {
						return e
					}
					return p.Set(c, v)
				}, p); e != nil {
					return e
				}
				if _, e := tk.AsyncInlineNamed("child", func(c *Task) error {
					_ = NewPromise[int](c) // dirty
					_, e := p.Get(c)
					if se := q.Set(c, 1); se != nil {
						return se
					}
					return e
				}, q); e != nil {
					return e
				}
				// Released only after the cycle alarmed somewhere. g has no
				// waiter left (sib either alarmed or died of the cascade).
				_ = g.Set(tk, 1)
				_, _ = q.Get(tk)
				return nil
			})
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("err = %v, want DeadlockError", err)
			}
			if len(dl.Cycle) != 2 {
				t.Fatalf("cycle length %d, want 2: %v", len(dl.Cycle), dl)
			}
			waits := map[string]string{}
			for _, n := range dl.Cycle {
				waits[n.TaskName] = n.PromiseLabel
			}
			if waits["main"] != "p" || waits["sib"] != "g" {
				t.Fatalf("cycle = %v, want {main awaits p, sib awaits g}", dl.Cycle)
			}
		})
	}
}

// TestInlineRecoveredSentinelFails: a body that recover()s the migration
// sentinel and returns normally can be neither completed (its wait never
// happened) nor restarted — it must fail with the dedicated error.
func TestInlineRecoveredSentinelFails(t *testing.T) {
	rt := NewRuntime(WithMode(Full))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromise[int](tk)
		if _, e := tk.AsyncInline(func(c *Task) error {
			defer func() { recover() }() // swallows the migration sentinel
			_, _ = p.Get(c)
			return nil
		}); e != nil {
			return e
		}
		return p.Set(tk, 1)
	})
	if !errors.Is(err, errInlineRecovered) {
		t.Fatalf("err = %v, want errInlineRecovered", err)
	}
}

// TestInlinePoisonedAfterRecoverFails: worse than swallowing — the body
// recovers the sentinel and performs MORE promise operations. The task is
// poisoned and must fail, and the post-recovery operations must not leak
// broken state into the caller.
func TestInlinePoisonedAfterRecoverFails(t *testing.T) {
	rt := NewRuntime(WithMode(Full))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromise[int](tk)
		if _, e := tk.AsyncInline(func(c *Task) error {
			func() {
				defer func() { recover() }()
				_, _ = p.Get(c)
			}()
			q := NewPromise[int](c) // poison: operation after the abort
			_ = q.Set(c, 1)
			return nil
		}); e != nil {
			return e
		}
		return p.Set(tk, 1)
	})
	if !errors.Is(err, errInlineRecovered) {
		t.Fatalf("err = %v, want errInlineRecovered", err)
	}
}

// TestInlineDepthCapFallsBack: nesting inline spawns past maxInlineDepth
// degrades to scheduled spawns instead of piling unbounded frames on one
// goroutine — the chain still completes end to end.
func TestInlineDepthCapFallsBack(t *testing.T) {
	const depth = 3 * maxInlineDepth
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode))
			err := run(t, rt, func(tk *Task) error {
				out := NewPromise[int](tk)
				var spawn func(c *Task, n int, out *Promise[int]) error
				spawn = func(c *Task, n int, out *Promise[int]) error {
					if n == 0 {
						return out.Set(c, depth)
					}
					_, e := c.AsyncInline(func(g *Task) error {
						return spawn(g, n-1, out)
					}, out)
					return e
				}
				if e := spawn(tk, depth, out); e != nil {
					return e
				}
				v, e := out.Get(tk)
				if e != nil {
					return e
				}
				if v != depth {
					return fmt.Errorf("got %d, want %d", v, depth)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWithInlineSpawnRoutesAsync: the runtime-wide option redirects plain
// Async through the inline path.
func TestWithInlineSpawnRoutesAsync(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode), WithInlineSpawn(true))
			err := run(t, rt, func(tk *Task) error {
				p := NewPromise[int](tk)
				var ran atomic.Bool
				if _, e := tk.Async(func(c *Task) error {
					ran.Store(true)
					return p.Set(c, 1)
				}, p); e != nil {
					return e
				}
				if !ran.Load() {
					return errors.New("Async under WithInlineSpawn did not run inline")
				}
				_, e := p.Get(tk)
				return e
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInlineWithTaskPooling: inline completion under WithTaskPooling must
// scrub and recycle the task handle without corrupting a subsequent spawn.
func TestInlineWithTaskPooling(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime(WithMode(mode), WithTaskPooling(true))
			err := run(t, rt, func(tk *Task) error {
				for i := 0; i < 200; i++ {
					p := NewPromise[int](tk)
					if _, e := tk.AsyncInline(func(c *Task) error {
						return p.Set(c, i)
					}, p); e != nil {
						return e
					}
					v, e := p.Get(tk)
					if e != nil {
						return e
					}
					if v != i {
						return fmt.Errorf("iteration %d read %d", i, v)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInlineCancelWithdrawsHostEdges: a committed inline wait abandoned
// by context cancellation must withdraw the child's edge AND every host
// edge, closing each trace block with a "cancel" wake — verified against
// the captured stream under both detectors.
func TestInlineCancelWithdrawsHostEdges(t *testing.T) {
	for _, det := range detectorConfigs() {
		t.Run(det.String(), func(t *testing.T) {
			mem := trace.NewMemSink(0)
			rt := NewRuntime(WithMode(Full), WithDetector(det), TraceTo(mem))
			release := make(chan struct{})
			err := run(t, rt, func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "slow")
				q := NewPromiseNamed[int](tk, "q")
				if _, e := tk.AsyncNamed("setter", func(c *Task) error {
					<-release
					return p.Set(c, 1)
				}, p); e != nil {
					return e
				}
				if _, e := tk.AsyncInlineNamed("child", func(c *Task) error {
					inner := NewPromise[int](c) // dirty: the wait below commits
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
					defer cancel()
					_, e := p.GetContext(ctx, c)
					var ce *CanceledError
					if !errors.As(e, &ce) {
						return fmt.Errorf("GetContext = %v, want CanceledError", e)
					}
					if se := inner.Set(c, 0); se != nil {
						return se
					}
					return q.Set(c, 1)
				}, q); e != nil {
					return e
				}
				close(release)
				if _, e := q.Get(tk); e != nil {
					return e
				}
				_, e := p.Get(tk)
				return e
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.TraceClose(); err != nil {
				t.Fatal(err)
			}
			evs := mem.Snapshot()
			rep := trace.Verify(evs)
			if !rep.Clean() {
				t.Fatalf("trace not clean: %s", rep.Summary())
			}
			var blocks, cancels int
			for _, e := range evs {
				if e.PromiseLabel != "slow" {
					continue
				}
				switch e.Kind {
				case trace.KindBlock:
					if e.TaskName == "child" || (e.TaskName == "main" && e.Detail == "inline") {
						blocks++
					}
				case trace.KindWake:
					if e.Detail == "cancel" {
						cancels++
					}
				}
			}
			if blocks != 2 || cancels != 2 {
				t.Fatalf("child+host blocks = %d, cancel wakes = %d; want 2 and 2", blocks, cancels)
			}
		})
	}
}

// --- Differential detector-precision suite -------------------------------
//
// The ISSUE's hard obligation: detector verdicts, blame, and trace
// consistency must be IDENTICAL whether a spawn executes inline or
// scheduled. Block/wake interleavings are schedule-dependent in racy
// programs, so the differential comparison uses the deterministic
// observables: the classified error set (deadlock cycles as sorted
// task->promise sets, ownership blame by task and promise name) and
// offline trace verification.

// spawnFn abstracts the spawn path under test.
type spawnFn func(t *Task, name string, f TaskFunc, moved ...Movable) (*Task, error)

func inlineSpawner(t *Task, name string, f TaskFunc, moved ...Movable) (*Task, error) {
	return t.AsyncInlineNamed(name, f, moved...)
}

func schedSpawner(t *Task, name string, f TaskFunc, moved ...Movable) (*Task, error) {
	return t.AsyncNamed(name, f, moved...)
}

// classifyVerdict reduces a run error to a canonical, schedule-independent
// description of every policy/detector verdict it carries.
func classifyVerdict(err error) string {
	if err == nil {
		return "ok"
	}
	var parts []string
	var dl *DeadlockError
	if errors.As(err, &dl) {
		hops := make([]string, 0, len(dl.Cycle))
		for _, n := range dl.Cycle {
			hops = append(hops, n.TaskName+"->"+n.PromiseLabel)
		}
		sort.Strings(hops)
		parts = append(parts, "deadlock{"+strings.Join(hops, ",")+"}")
	}
	var om *OmittedSetError
	if errors.As(err, &om) {
		labels := make([]string, 0, len(om.Promises))
		for _, p := range om.Promises {
			labels = append(labels, p.Label())
		}
		sort.Strings(labels)
		parts = append(parts, fmt.Sprintf("omitted{%s:%s}", om.TaskName, strings.Join(labels, ",")))
	}
	var ds *DoubleSetError
	if errors.As(err, &ds) {
		parts = append(parts, fmt.Sprintf("double{%s:%s}", ds.TaskName, ds.PromiseLabel))
	}
	var ow *OwnershipError
	if errors.As(err, &ow) {
		parts = append(parts, fmt.Sprintf("ownership{%s %s:%s}", ow.Op, ow.TaskName, ow.PromiseLabel))
	}
	var bp *BrokenPromiseError
	if errors.As(err, &bp) {
		parts = append(parts, "broken{"+bp.PromiseLabel+"}")
	}
	if len(parts) == 0 {
		return "error{" + err.Error() + "}"
	}
	sort.Strings(parts)
	return strings.Join(parts, "+")
}

// differentialPrograms are the verdict-bearing shapes. Each is written so
// the inline execution is well-defined: children either never block or
// block CLEAN first (migrating to a scheduled goroutine), so the verdict
// does not depend on the spawn path — which is exactly what the test
// asserts.
func differentialPrograms() []struct {
	name string
	prog func(spawn spawnFn) TaskFunc
} {
	return []struct {
		name string
		prog func(spawn spawnFn) TaskFunc
	}{
		{"clean-fanout", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				const n = 4
				ps := make([]*Promise[int], n)
				for i := range ps {
					ps[i] = NewPromiseNamed[int](tk, fmt.Sprintf("p%d", i))
				}
				for i := range ps {
					i := i
					if _, e := spawn(tk, fmt.Sprintf("w%d", i), func(c *Task) error {
						return ps[i].Set(c, i)
					}, ps[i]); e != nil {
						return e
					}
				}
				for i, p := range ps {
					v, e := p.Get(tk)
					if e != nil {
						return e
					}
					if v != i {
						return fmt.Errorf("p%d = %d", i, v)
					}
				}
				return nil
			}
		}},
		{"omitted-set", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "leaked")
				if _, e := spawn(tk, "leaker", func(c *Task) error {
					return nil // takes ownership, never sets
				}, p); e != nil {
					return e
				}
				_, e := p.Get(tk)
				return e
			}
		}},
		{"double-set", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "twice")
				if _, e := spawn(tk, "setter", func(c *Task) error {
					if e := p.Set(c, 1); e != nil {
						return e
					}
					return p.Set(c, 2)
				}, p); e != nil {
					return e
				}
				_, e := p.Get(tk)
				return e
			}
		}},
		{"set-without-ownership", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "mine")
				done := NewPromiseNamed[int](tk, "done")
				if _, e := spawn(tk, "thief", func(c *Task) error {
					se := p.Set(c, 99) // p was never moved to the child
					if e := done.Set(c, 1); e != nil {
						return e
					}
					return se
				}, done); e != nil {
					return e
				}
				// Join before the legitimate Set so the thief's verdict is
				// deterministically "set without ownership", never a racy
				// double-set against an already-fulfilled promise.
				if _, e := done.Get(tk); e != nil {
					return e
				}
				return p.Set(tk, 1)
			}
		}},
		{"move-without-ownership", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "stolen")
				if _, e := spawn(tk, "mover", func(c *Task) error {
					// The child tries to move a promise it does not own.
					_, e := c.AsyncNamed("inner", func(g *Task) error {
						return nil
					}, p)
					return e
				}); e != nil {
					return e
				}
				return p.Set(tk, 1)
			}
		}},
		{"deadlock-cycle", func(spawn spawnFn) TaskFunc {
			return func(tk *Task) error {
				p := NewPromiseNamed[int](tk, "p")
				q := NewPromiseNamed[int](tk, "q")
				if _, e := spawn(tk, "a", func(c *Task) error {
					// First action is a clean block: under inline spawn this
					// migrates, so the cycle shape is identical to scheduled.
					v, e := p.Get(c)
					if e != nil {
						return e
					}
					return q.Set(c, v)
				}, q); e != nil {
					return e
				}
				_, e := q.Get(tk) // main awaits q; a awaits p; p owned by main
				if e == nil {
					return errors.New("cycle-closing Get returned nil")
				}
				_ = p.Set(tk, 1)
				return e
			}
		}},
	}
}

// TestInlineDifferentialVerdicts runs every differential program both
// inline and scheduled, under Ownership and under Full with both
// detectors, and requires the classified verdicts to be identical.
func TestInlineDifferentialVerdicts(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"ownership", []Option{WithMode(Ownership)}},
		{"full-lockfree", []Option{WithMode(Full), WithDetector(DetectLockFree)}},
		{"full-globallock", []Option{WithMode(Full), WithDetector(DetectGlobalLock)}},
	}
	for _, tc := range differentialPrograms() {
		for _, cfg := range configs {
			if tc.name == "deadlock-cycle" && cfg.name == "ownership" {
				continue // the cycle hangs without a detector (Listing 1)
			}
			t.Run(tc.name+"/"+cfg.name, func(t *testing.T) {
				sched := classifyVerdict(run(t, NewRuntime(cfg.opts...), tc.prog(schedSpawner)))
				inline := classifyVerdict(run(t, NewRuntime(cfg.opts...), tc.prog(inlineSpawner)))
				if sched != inline {
					t.Fatalf("verdicts diverge:\n  scheduled: %s\n  inline:    %s", sched, inline)
				}
				if sched == "ok" && tc.name != "clean-fanout" {
					t.Fatalf("program %s produced no verdict at all", tc.name)
				}
			})
		}
	}
}

// TestInlineDifferentialTrace captures the deadlock-cycle program's trace
// under both spawn paths and requires (a) both streams re-verify offline
// with exactly one deadlock, (b) identical block multisets by
// (task, promise) name, and (c) exactly one "alarm" wake each.
func TestInlineDifferentialTrace(t *testing.T) {
	capture := func(spawn spawnFn) ([]trace.Event, *trace.Report) {
		t.Helper()
		mem := trace.NewMemSink(0)
		rt := NewRuntime(WithMode(Full), TraceTo(mem))
		prog := differentialPrograms()[5]
		if prog.name != "deadlock-cycle" {
			t.Fatalf("program table changed: got %s", prog.name)
		}
		_ = run(t, rt, prog.prog(spawn))
		if err := rt.TraceClose(); err != nil {
			t.Fatal(err)
		}
		evs := mem.Snapshot()
		return evs, trace.Verify(evs)
	}
	blockSet := func(evs []trace.Event) []string {
		var out []string
		for _, e := range evs {
			if e.Kind == trace.KindBlock {
				out = append(out, e.TaskName+"->"+e.PromiseLabel+"/"+e.Detail)
			}
		}
		sort.Strings(out)
		return out
	}
	alarms := func(evs []trace.Event) int {
		n := 0
		for _, e := range evs {
			if e.Kind == trace.KindWake && e.Detail == "alarm" {
				n++
			}
		}
		return n
	}
	sEvs, sRep := capture(schedSpawner)
	iEvs, iRep := capture(inlineSpawner)
	if !sRep.Consistent() || !iRep.Consistent() {
		t.Fatalf("inconsistent traces: scheduled %s / inline %s", sRep.Summary(), iRep.Summary())
	}
	if sRep.Deadlocks != 1 || iRep.Deadlocks != 1 {
		t.Fatalf("re-verified deadlocks: scheduled %d, inline %d; want 1 and 1",
			sRep.Deadlocks, iRep.Deadlocks)
	}
	sb, ib := blockSet(sEvs), blockSet(iEvs)
	if strings.Join(sb, ";") != strings.Join(ib, ";") {
		t.Fatalf("block multisets diverge:\n  scheduled: %v\n  inline:    %v", sb, ib)
	}
	if a, b := alarms(sEvs), alarms(iEvs); a != 1 || b != 1 {
		t.Fatalf("alarm wakes: scheduled %d, inline %d; want 1 and 1", a, b)
	}
}

// TestInlineTraceRoundTrip: a traced run mixing inline completion,
// migration, and dirty commits must re-verify clean offline, with the
// "inline" task-start detail intact in the stream.
func TestInlineTraceRoundTrip(t *testing.T) {
	mem := trace.NewMemSink(0)
	rt := NewRuntime(WithMode(Full), TraceTo(mem))
	err := run(t, rt, func(tk *Task) error {
		// Inline completion.
		a := NewPromiseNamed[int](tk, "a")
		if _, e := tk.AsyncInlineNamed("fast", func(c *Task) error {
			return a.Set(c, 1)
		}, a); e != nil {
			return e
		}
		// Migration (clean block on a promise only the caller can set).
		b := NewPromiseNamed[int](tk, "b")
		r := NewPromiseNamed[int](tk, "r")
		if _, e := tk.AsyncInlineNamed("migrant", func(c *Task) error {
			v, e := b.Get(c)
			if e != nil {
				return e
			}
			return r.Set(c, v)
		}, r); e != nil {
			return e
		}
		if e := b.Set(tk, 2); e != nil {
			return e
		}
		// Dirty commit woken by a scheduled sibling.
		d := NewPromiseNamed[int](tk, "d")
		s := NewPromiseNamed[int](tk, "s")
		if _, e := tk.AsyncNamed("sib", func(c *Task) error {
			return d.Set(c, 3)
		}, d); e != nil {
			return e
		}
		if _, e := tk.AsyncInlineNamed("dirty", func(c *Task) error {
			inner := NewPromise[int](c)
			v, e := d.Get(c)
			if e != nil {
				return e
			}
			if e := inner.Set(c, v); e != nil {
				return e
			}
			return s.Set(c, v)
		}, s); e != nil {
			return e
		}
		for _, p := range []*Promise[int]{a, r, s} {
			if _, e := p.Get(tk); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TraceClose(); err != nil {
		t.Fatal(err)
	}
	evs := mem.Snapshot()
	rep := trace.Verify(evs)
	if !rep.Clean() {
		t.Fatalf("trace not clean: %s", rep.Summary())
	}
	inlineStarts := 0
	for _, e := range evs {
		if e.Kind == trace.KindTaskStart && e.Detail == "inline" {
			inlineStarts++
		}
	}
	if inlineStarts != 3 {
		t.Fatalf("inline task starts in trace = %d, want 3", inlineStarts)
	}
}
