package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func kindsOf(evs []Event) map[EventKind]int {
	m := map[EventKind]int{}
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

func TestEventLogDisabledByDefault(t *testing.T) {
	rt := NewRuntime()
	if err := run(t, rt, func(tk *Task) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if rt.Events() != nil || rt.EventLog() != "" {
		t.Fatal("event log active without WithEventLog")
	}
}

func TestEventLogCapturesLifecycle(t *testing.T) {
	rt := NewRuntime(WithEventLog(0))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromiseNamed[int](tk, "traced")
		if _, e := tk.AsyncNamed("child", func(c *Task) error {
			return p.Set(c, 1)
		}, p); e != nil {
			return e
		}
		_, e := p.Get(tk)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kindsOf(rt.Events())
	if k[EvNewPromise] != 1 {
		t.Fatalf("new events = %d", k[EvNewPromise])
	}
	if k[EvMove] != 1 {
		t.Fatalf("move events = %d", k[EvMove])
	}
	if k[EvSet] != 1 {
		t.Fatalf("set events = %d", k[EvSet])
	}
	if k[EvTaskStart] != 2 || k[EvTaskEnd] != 2 {
		t.Fatalf("task events = %d/%d", k[EvTaskStart], k[EvTaskEnd])
	}
	// The get may or may not block (fast path) depending on timing, so
	// EvBlock/EvWake are 0 or 1 but must agree.
	if k[EvBlock] != k[EvWake] {
		t.Fatalf("block/wake imbalance: %d/%d", k[EvBlock], k[EvWake])
	}
	log := rt.EventLog()
	for _, want := range []string{"move", "traced", "to child", "set"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
}

func TestEventLogSequenceIsMonotone(t *testing.T) {
	rt := NewRuntime(WithEventLog(0))
	err := run(t, rt, func(tk *Task) error {
		for i := 0; i < 20; i++ {
			p := NewPromise[int](tk)
			if e := p.Set(tk, i); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := rt.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not monotone at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventLogRingBounds(t *testing.T) {
	rt := NewRuntime(WithEventLog(8))
	err := run(t, rt, func(tk *Task) error {
		for i := 0; i < 50; i++ {
			p := NewPromise[int](tk)
			if e := p.Set(tk, i); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := rt.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// The retained suffix must be the most recent events: the run-end
	// marker, preceded by the root's task-end.
	if last := evs[len(evs)-1]; last.Kind != trace.KindRunEnd {
		t.Fatalf("last retained event = %v, want run-end", last.Kind)
	}
	if prev := evs[len(evs)-2]; prev.Kind != EvTaskEnd {
		t.Fatalf("second-to-last retained event = %v, want task-end", prev.Kind)
	}
}

func TestEventLogRecordsAlarms(t *testing.T) {
	rt := NewRuntime(WithEventLog(0))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromiseNamed[int](tk, "cyc")
		if _, e := p.Get(tk); e == nil {
			return fmt.Errorf("no alarm")
		}
		return p.Set(tk, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kindsOf(rt.Events())
	if k[EvAlarm] == 0 {
		t.Fatal("alarm not logged")
	}
	if !strings.Contains(rt.EventLog(), "deadlock") {
		t.Fatalf("alarm detail missing:\n%s", rt.EventLog())
	}
}

func TestEventLogSetError(t *testing.T) {
	rt := NewRuntime(WithEventLog(0))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromiseNamed[int](tk, "bad")
		return p.SetError(tk, fmt.Errorf("boom"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if k := kindsOf(rt.Events()); k[EvSetError] != 1 {
		t.Fatalf("set-error events = %d", k[EvSetError])
	}
	if !strings.Contains(rt.EventLog(), "boom") {
		t.Fatal("error detail missing")
	}
}

// TestEventLogLastCapacityWins: repeated WithEventLog options behave
// like every other runtime option — the last capacity wins.
func TestEventLogLastCapacityWins(t *testing.T) {
	rt := NewRuntime(WithEventLog(4), WithEventLog(8))
	err := run(t, rt, func(tk *Task) error {
		for i := 0; i < 50; i++ {
			p := NewPromise[int](tk)
			if e := p.Set(tk, i); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Events()); got != 8 {
		t.Fatalf("retained %d events, want the later option's 8", got)
	}
}

// TestEventLogNeverDrops asserts the overflow policy's healthy case:
// concurrent emission from many tasks, across many chunk retirements,
// with zero events dropped (Stats.EventsDropped is the counter the
// ring-overflow policy increments instead of ever blocking a writer).
func TestEventLogNeverDrops(t *testing.T) {
	rt := NewRuntime(WithEventLog(0))
	const workers, perWorker = 8, 1200
	err := run(t, rt, func(tk *Task) error {
		ps := make([]*Promise[int], workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			ps[w] = NewPromise[int](tk)
			w := w
			wg.Add(1)
			if _, e := tk.Async(func(c *Task) error {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					p := NewPromise[int](c)
					if e := p.Set(c, i); e != nil {
						return e
					}
					if _, e := p.Get(c); e != nil {
						return e
					}
				}
				return ps[w].Set(c, w)
			}, ps[w]); e != nil {
				wg.Done()
				return e
			}
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := rt.Stats().EventsDropped; d != 0 {
		t.Fatalf("EventsDropped = %d, want 0", d)
	}
	// No gap records may appear in a drop-free stream.
	for _, e := range rt.Events() {
		if e.Kind == trace.KindGap {
			t.Fatalf("gap record in a drop-free trace: %v", e)
		}
	}
}

// TestTraceToRoundTrip streams a run through the binary format and
// checks the decoded trace verifies offline: the same machinery
// cmd/tracecheck uses, wired end-to-end from a live runtime.
func TestTraceToRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rt := NewRuntime(TraceTo(trace.NewWriterSink(&buf)))
	err := run(t, rt, func(tk *Task) error {
		p := NewPromiseNamed[int](tk, "wire")
		if _, e := tk.AsyncNamed("producer", func(c *Task) error {
			return p.Set(c, 7)
		}, p); e != nil {
			return e
		}
		_, e := p.Get(tk)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TraceClose(); err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.Verify(evs)
	if !rep.Clean() {
		t.Fatalf("offline verifier rejected a clean run: %+v", rep)
	}
	if rep.Mode != "full" {
		t.Fatalf("mode meta = %q", rep.Mode)
	}
	// Events() stays nil without WithEventLog even when TraceTo is set.
	if rt.Events() != nil {
		t.Fatal("Events() non-nil without WithEventLog")
	}
}

// TestTraceCapturesDeadlockOffline: the recorded trace of a deadlocking
// run must re-verify offline — exactly one deadlock alarm whose cycle
// closes in the reconstructed waits-for graph.
func TestTraceCapturesDeadlockOffline(t *testing.T) {
	mem := trace.NewMemSink(0)
	rt := NewRuntime(TraceTo(mem))
	err := rt.Run(func(tk *Task) error {
		p := NewPromiseNamed[int](tk, "p")
		q := NewPromiseNamed[int](tk, "q")
		if _, e := tk.AsyncNamed("t2", func(t2 *Task) error {
			if _, e := p.Get(t2); e != nil {
				return e
			}
			return q.Set(t2, 0)
		}, q); e != nil {
			return e
		}
		if _, e := q.Get(tk); e != nil {
			return e
		}
		return p.Set(tk, 0)
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if err := rt.TraceClose(); err != nil {
		t.Fatal(err)
	}
	rep := trace.Verify(mem.Snapshot())
	if !rep.Consistent() {
		t.Fatalf("deadlock trace inconsistent: %v", rep.Problems)
	}
	if rep.Deadlocks != 1 {
		t.Fatalf("deadlock alarms = %d, want 1", rep.Deadlocks)
	}
	for _, a := range rep.Alarms {
		if a.Class == trace.AlarmDeadlock && (!a.CycleVerified || a.CycleLen != 2) {
			t.Fatalf("cycle not re-verified offline: %+v", a)
		}
	}
	if d := rt.Stats().EventsDropped; d != 0 {
		t.Fatalf("EventsDropped = %d, want 0", d)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvNewPromise, EvMove, EvSet, EvSetError, EvBlock, EvWake, EvTaskStart, EvTaskEnd, EvAlarm,
		trace.KindGap, trace.KindMeta, trace.KindRunEnd, EventKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
