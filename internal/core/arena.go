package core

// Slab promise allocation.
//
// NewPromise is one heap object per promise — already the floor for
// individually allocated cells, and after the packed-word redesign it IS
// the setget micro's single alloc/op. A PromiseArena goes below that
// floor by bump-allocating promises out of slabs of arenaBlock, so the
// amortized cost is 1/arenaBlock heap allocations per promise, and by
// recycling fulfilled promises where that is sound (see Recycle).

// arenaBlock is the slab size. 64 promises per slab puts the amortized
// allocation cost near zero without making the slab so large that a
// mostly-idle arena pins significant memory: a Promise[struct{}] slab is
// ~6 KiB.
const arenaBlock = 64

// PromiseArena is a slab allocator for promises of one payload type.
// Promises it returns are ordinary *Promise[T] — owned, policy-checked,
// traced, and detector-visible exactly like NewPromise's (they share
// initPromise) — but they are carved out of shared slabs, so their
// LIFETIME is the arena's: a slab stays reachable as long as any promise
// in it does, and nothing is individually freed.
//
// An arena is NOT thread-safe. Confine it to one task at a time — the
// intended shape is one arena per task, or handed off at spawn the way
// owned promises are. The promises themselves are as concurrent as any
// other promise.
type PromiseArena[T any] struct {
	r    *Runtime
	slab []Promise[T]
	next int
	free []*Promise[T]
}

// NewPromiseArena creates an arena allocating against t's runtime.
func NewPromiseArena[T any](t *Task) *PromiseArena[T] {
	return &PromiseArena[T]{r: t.rt}
}

// New allocates a promise owned by t (rule 1), from the recycle list if
// possible, else by bumping the current slab.
func (a *PromiseArena[T]) New(t *Task) *Promise[T] {
	if t.rt != a.r {
		panic("core: PromiseArena used with a task from a different runtime")
	}
	var p *Promise[T]
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		*p = Promise[T]{} // scrub at reuse, not at Recycle — see Recycle
	} else {
		if a.next == len(a.slab) {
			a.slab = make([]Promise[T], arenaBlock)
			a.next = 0
			if m := cmet(); m != nil {
				m.arenaSlabs.Inc()
			}
		}
		p = &a.slab[a.next]
		a.next++
	}
	initPromise(p, t, "")
	return p
}

// Recycle offers a promise back to the arena for reuse by a later New.
// It returns true only when the promise was actually accepted, which
// requires BOTH of:
//
//   - The promise is fulfilled. An owned, unfulfilled promise is live
//     policy state; reusing it would corrupt rule bookkeeping.
//   - The runtime is Unverified. Under the verified modes a fulfilled
//     promise must stay fulfilled-and-ownerless FOREVER: Algorithm 2's
//     double-read of the owner field tolerates a stale waitingOn
//     precisely because a fulfilled promise can never be re-owned
//     (DESIGN.md's variant of the Task.gen ABA argument — promises have
//     no generation counter, adding one would put a word and a fence on
//     the Set/Get hot path, so the arena refuses instead). Unverified
//     mode has no owner fields and no detector, so reuse is safe there.
//
// A false return is not an error — the promise simply stays on its slab
// until the arena as a whole is dropped. The caller must guarantee no
// goroutine still holds a reference to a promise it recycles: a
// straggler Get on a recycled promise is a use-after-reuse bug, exactly
// like reading any other recycled object.
func (a *PromiseArena[T]) Recycle(p *Promise[T]) bool {
	if a.r.mode != Unverified || !p.s.fulfilled() {
		return false
	}
	a.free = append(a.free, p)
	if m := cmet(); m != nil {
		m.arenaRecycled.Inc()
	}
	return true
}
