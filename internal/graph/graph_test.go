package graph_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

func newTestPool(t *testing.T, max int) *serve.Pool {
	t.Helper()
	pool := serve.NewPool(serve.Config{
		MaxSessions: max,
		QueueDepth:  64,
		Runtime:     []core.Option{core.WithMode(core.Full)},
	})
	t.Cleanup(pool.Close)
	return pool
}

// constNode returns v; sumNode doubles/propagates typed inputs — the
// bread-and-butter dataflow bodies the diamond test wires together.
func constNode(v int) graph.NodeFunc {
	return func(_ *core.Task, _ graph.Inputs) (any, error) { return v, nil }
}

func waitInFlight(t *testing.T, p *serve.Pool, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().InFlight == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight never reached %d (now %d)", want, p.Stats().InFlight)
}

// blockUntilCanceled never succeeds: the root waits on a promise only
// fulfilled when the session's cancellation scope ends, so the session's
// only outcome is VerdictCanceled (same shape as serve's cancel tests).
func blockUntilCanceled(root *core.Task) error {
	p := core.NewPromise[int](root)
	if _, err := root.Async(func(c *core.Task) error {
		for c.Context().Err() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		time.Sleep(20 * time.Millisecond)
		return p.Set(c, 0)
	}, p); err != nil {
		return err
	}
	_, err := p.Get(root)
	return err
}

func TestDiamondDataflow(t *testing.T) {
	pool := newTestPool(t, 4)
	before := graph.Stats()

	g := graph.New("diamond")
	g.MustNode("src", constNode(21))
	g.MustNode("left", func(_ *core.Task, in graph.Inputs) (any, error) {
		v, err := graph.In[int](in, "src")
		if err != nil {
			return nil, err
		}
		return v * 2, nil
	}, graph.After("src"))
	g.MustNode("right", func(_ *core.Task, in graph.Inputs) (any, error) {
		v, err := graph.In[int](in, "src")
		if err != nil {
			return nil, err
		}
		return v + 1, nil
	}, graph.After("src"))
	sink := g.MustNode("sink", func(_ *core.Task, in graph.Inputs) (any, error) {
		l, err := graph.In[int](in, "left")
		if err != nil {
			return nil, err
		}
		r, err := graph.In[int](in, "right")
		if err != nil {
			return nil, err
		}
		return l + r, nil
	}, graph.After("left", "right"))

	res, err := g.Run(t.Context(), pool)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK() || res.Succeeded != 4 || res.Failed != 0 || res.Canceled != 0 {
		t.Fatalf("result not clean: %+v", res)
	}
	out, ok := res.Output("sink")
	if !ok || out.(int) != 64 {
		t.Fatalf("sink output = %v (ok=%v), want 64", out, ok)
	}
	v, ferr := sink.Future().Value()
	if ferr != nil || v.(int) != 64 {
		t.Fatalf("sink future = %v, %v; want 64", v, ferr)
	}
	for name, nr := range res.Nodes {
		if nr.Attempts != 1 || nr.BodyRuns != 1 {
			t.Fatalf("node %s attempts=%d bodyRuns=%d, want 1/1", name, nr.Attempts, nr.BodyRuns)
		}
		if nr.Verdict != serve.VerdictClean {
			t.Fatalf("node %s verdict %s, want clean", name, nr.Verdict)
		}
	}
	if len(res.CriticalPath) != 3 || res.CriticalPath[len(res.CriticalPath)-1] != "sink" {
		t.Fatalf("critical path %v, want 3 hops ending at sink", res.CriticalPath)
	}

	after := graph.Stats()
	if after.GraphsRun-before.GraphsRun != 1 || after.GraphsOK-before.GraphsOK != 1 {
		t.Fatalf("graph counters did not advance: before=%+v after=%+v", before, after)
	}
	if after.NodesSucceeded-before.NodesSucceeded != 4 {
		t.Fatalf("nodes_succeeded advanced by %d, want 4", after.NodesSucceeded-before.NodesSucceeded)
	}

	// Graphs are single-shot.
	if _, err := g.Run(t.Context(), pool); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestDeclarationValidation(t *testing.T) {
	g := graph.New("bad")
	ok := func(_ *core.Task, _ graph.Inputs) (any, error) { return nil, nil }
	if _, err := g.Node("", ok); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := g.Node("a", nil); err == nil {
		t.Fatal("nil body accepted")
	}
	if _, err := g.Node("a", ok); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Node("a", ok); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := g.Node("b", ok, graph.After("b")); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if _, err := g.Node("b", ok, graph.After("zzz")); err == nil {
		t.Fatal("forward reference accepted — graphs must be declare-before-use")
	}
	if _, err := g.Node("b", ok, graph.After("a", "a")); err == nil {
		t.Fatal("duplicate dependency accepted")
	}
}

func TestCascadeCancellation(t *testing.T) {
	pool := newTestPool(t, 4)
	boom := errors.New("boom")

	g := graph.New("cascade")
	g.MustNode("root", constNode(1))
	g.MustNode("bad", func(_ *core.Task, _ graph.Inputs) (any, error) {
		return nil, boom
	}, graph.After("root"), graph.WithRetry(graph.Retry{MaxAttempts: 2, Backoff: time.Millisecond}))
	g.MustNode("mid", constNode(2), graph.After("bad"))
	g.MustNode("leaf", constNode(3), graph.After("mid"))
	g.MustNode("side", constNode(4), graph.After("root"))

	res, err := g.Run(t.Context(), pool)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error %v, want boom", err)
	}
	bad := res.Nodes["bad"]
	if bad.State != graph.NodeFailed || bad.Attempts != 2 || bad.BodyRuns != 2 {
		t.Fatalf("bad: %+v, want failed after 2 attempts", bad)
	}
	for _, name := range []string{"mid", "leaf"} {
		nr := res.Nodes[name]
		if nr.State != graph.NodeCanceled || nr.BodyRuns != 0 {
			t.Fatalf("%s: state=%s bodyRuns=%d, want canceled/0", name, nr.StateName, nr.BodyRuns)
		}
		var up *graph.ErrUpstream
		if !errors.As(nr.Err, &up) || up.Node != "bad" {
			t.Fatalf("%s err %v, want ErrUpstream rooted at bad", name, nr.Err)
		}
		if !errors.Is(nr.Err, boom) {
			t.Fatalf("%s err %v does not unwrap to the root cause", name, nr.Err)
		}
	}
	// The independent branch must be untouched by the cascade.
	if side := res.Nodes["side"]; side.State != graph.NodeSucceeded {
		t.Fatalf("side: %s, want succeeded (independent of failure)", side.StateName)
	}
	if res.Succeeded != 2 || res.Failed != 1 || res.Canceled != 2 {
		t.Fatalf("counts %d/%d/%d, want 2 succeeded, 1 failed, 2 canceled", res.Succeeded, res.Failed, res.Canceled)
	}
	if res.Retries != 1 {
		t.Fatalf("retries %d, want 1 (bad's second attempt)", res.Retries)
	}
}

func TestFlakyNodeRetriesToSuccess(t *testing.T) {
	pool := newTestPool(t, 2)
	var runs atomic.Int64
	g := graph.New("flaky")
	g.MustNode("f", func(_ *core.Task, _ graph.Inputs) (any, error) {
		if runs.Add(1) <= 2 {
			return nil, errors.New("transient")
		}
		return "done", nil
	}, graph.WithRetry(graph.Retry{MaxAttempts: 3, Backoff: time.Millisecond}))

	res, err := g.Run(t.Context(), pool)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := res.Nodes["f"]
	if f.State != graph.NodeSucceeded || f.Attempts != 3 || f.BodyRuns != 3 {
		t.Fatalf("flaky node %+v, want success on attempt 3", f)
	}
	if res.Retries != 2 {
		t.Fatalf("retries %d, want 2", res.Retries)
	}
}

func TestAttemptTimeoutRetriesThenFails(t *testing.T) {
	pool := newTestPool(t, 2)
	g := graph.New("timeout")
	g.MustNode("slow", func(t *core.Task, _ graph.Inputs) (any, error) {
		return nil, blockUntilCanceled(t)
	},
		graph.WithTimeout(40*time.Millisecond),
		graph.WithRetry(graph.Retry{MaxAttempts: 2, Backoff: time.Millisecond}))

	res, err := g.Run(t.Context(), pool)
	if !errors.Is(err, graph.ErrNodeTimeout) {
		t.Fatalf("Run error %v, want ErrNodeTimeout", err)
	}
	slow := res.Nodes["slow"]
	if slow.State != graph.NodeFailed {
		t.Fatalf("state %s, want failed — attempt timeouts are retryable, not graph-cancel", slow.StateName)
	}
	if slow.Attempts != 2 || slow.BodyRuns != 2 {
		t.Fatalf("attempts=%d bodyRuns=%d, want 2/2 (timeout consumed the budget)", slow.Attempts, slow.BodyRuns)
	}
	if slow.Verdict != serve.VerdictCanceled {
		t.Fatalf("verdict %s, want canceled (each attempt died to its deadline)", slow.Verdict)
	}
}

func TestGraphContextCancelIsTerminal(t *testing.T) {
	pool := newTestPool(t, 2)
	ctx, cancel := context.WithCancel(t.Context())
	g := graph.New("ctx")
	g.MustNode("hold", func(t *core.Task, _ graph.Inputs) (any, error) {
		return nil, blockUntilCanceled(t)
	}, graph.WithRetry(graph.Retry{MaxAttempts: 5, Backoff: time.Millisecond}))
	g.MustNode("next", constNode(1), graph.After("hold"))

	done := make(chan struct{})
	var res *graph.GraphResult
	var err error
	go func() { res, err = g.Run(ctx, pool); close(done) }()
	waitInFlight(t, pool, 1)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after graph context cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error %v, want context.Canceled", err)
	}
	hold := res.Nodes["hold"]
	if hold.State != graph.NodeCanceled || hold.Attempts != 1 {
		t.Fatalf("hold %+v: graph cancel must be terminal, not retried", hold)
	}
	if next := res.Nodes["next"]; next.State != graph.NodeCanceled || next.BodyRuns != 0 {
		t.Fatalf("next %+v, want cascade-canceled without running", next)
	}
}

// Satellite regression: a retry submitted while the pool drains must get
// the prompt typed ErrPoolClosed and terminate the node — never hang the
// graph on a closed pool.
func TestRetryDuringPoolDrainGetsPromptPoolClosed(t *testing.T) {
	pool := serve.NewPool(serve.Config{MaxSessions: 2, QueueDepth: 8})
	failed := make(chan struct{})
	g := graph.New("drain")
	g.MustNode("a", func(_ *core.Task, _ graph.Inputs) (any, error) {
		close(failed)
		return nil, errors.New("first attempt fails")
	}, graph.WithRetry(graph.Retry{MaxAttempts: 3, Backoff: 300 * time.Millisecond}))
	g.MustNode("b", constNode(1), graph.After("a"))

	done := make(chan struct{})
	var res *graph.GraphResult
	var err error
	go func() { res, err = g.Run(t.Context(), pool); close(done) }()
	<-failed
	pool.Close() // lands inside a's retry backoff
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung: retry against a draining pool must fail promptly")
	}
	if !errors.Is(err, serve.ErrPoolClosed) {
		t.Fatalf("Run error %v, want ErrPoolClosed", err)
	}
	a := res.Nodes["a"]
	if a.State != graph.NodeCanceled || !errors.Is(a.Err, serve.ErrPoolClosed) {
		t.Fatalf("a %+v, want canceled by ErrPoolClosed", a)
	}
	var up *graph.ErrUpstream
	if b := res.Nodes["b"]; b.State != graph.NodeCanceled || !errors.As(b.Err, &up) || up.Node != "a" {
		t.Fatalf("b %+v, want cascade-canceled from a", b)
	}
}

// Satellite regression: cancel while the node's session is still queued
// (admitted but slotless) must release cleanly — the body never runs and
// the held slot's accounting is intact for later submissions.
func TestCancelWhileQueuedNeverRunsBody(t *testing.T) {
	pool := serve.NewPool(serve.Config{MaxSessions: 1, QueueDepth: 8})
	defer pool.Close()
	gate := make(chan struct{})
	hold, err := pool.Submit(t.Context(), "hold", func(_ *core.Task) error { <-gate; return nil })
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, pool, 1)

	ctx, cancel := context.WithCancel(t.Context())
	g := graph.New("queued")
	g.MustNode("q", constNode(7))
	done := make(chan struct{})
	var res *graph.GraphResult
	go func() { res, _ = g.Run(ctx, pool); close(done) }()
	// Wait until q's session is parked in the admission queue, then
	// cancel the graph out from under it.
	waitQueued(t, pool, 1)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel-while-queued")
	}
	q := res.Nodes["q"]
	if q.State != graph.NodeCanceled || q.BodyRuns != 0 {
		t.Fatalf("q %+v: a queued-then-canceled node must never run its body", q)
	}
	if !errors.Is(q.Err, context.Canceled) {
		t.Fatalf("q err %v, want context.Canceled", q.Err)
	}

	// Slot accounting must be whole: release the holder, then the slot
	// serves a fresh session cleanly.
	close(gate)
	if err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
	s, err := pool.Submit(t.Context(), "after", func(_ *core.Task) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("post-cancel session failed: %v", err)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func waitQueued(t *testing.T, p *serve.Pool, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Waiting == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queued never reached %d (now %d)", want, p.Stats().Waiting)
}

func TestTypedInputMismatchFailsConsumer(t *testing.T) {
	pool := newTestPool(t, 2)
	g := graph.New("typed")
	g.MustNode("p", constNode(1))
	g.MustNode("c", func(_ *core.Task, in graph.Inputs) (any, error) {
		_, err := graph.In[string](in, "p") // producer emits int
		return nil, err
	}, graph.After("p"))
	res, err := g.Run(t.Context(), pool)
	if err == nil {
		t.Fatal("type-mismatched graph ran clean")
	}
	if c := res.Nodes["c"]; c.State != graph.NodeFailed {
		t.Fatalf("c %s, want failed with a diagnosable type error (got err %v)", c.StateName, c.Err)
	}
}

func TestRandomDAGDeterministicAndExact(t *testing.T) {
	cfg := graph.RandConfig{
		Nodes:     40,
		DoomProb:  0.15,
		FlakyProb: 0.25,
		Retry:     graph.Retry{MaxAttempts: 3, Backoff: 500 * time.Microsecond},
		FanWidth:  4,
		Seed:      7,
	}
	d := graph.Random(cfg)
	d2 := graph.Random(cfg)
	if !reflect.DeepEqual(d.Deps, d2.Deps) || !reflect.DeepEqual(d.Doomed, d2.Doomed) || !reflect.DeepEqual(d.Flaky, d2.Flaky) {
		t.Fatal("same seed produced different DAGs")
	}

	pool := newTestPool(t, 8)
	res, _ := g0run(t, d, pool)
	assertRandDAG(t, d, res)
}

func TestRandomDAGWithDeadlockDoom(t *testing.T) {
	d := graph.Random(graph.RandConfig{
		Nodes:        24,
		DoomProb:     0.2,
		DeadlockDoom: true,
		Retry:        graph.Retry{MaxAttempts: 2, Backoff: 500 * time.Microsecond},
		FanWidth:     2,
		Seed:         11,
	})
	pool := newTestPool(t, 8)
	res, _ := g0run(t, d, pool)
	assertRandDAG(t, d, res)
}

func g0run(t *testing.T, d *graph.RandDAG, pool *serve.Pool) (*graph.GraphResult, error) {
	t.Helper()
	res, err := d.Graph.Run(t.Context(), pool)
	if res == nil {
		t.Fatalf("Run returned nil result (err %v)", err)
	}
	return res, err
}

// assertRandDAG checks a finished random DAG against its ground truth:
// expected state per node, exactly-once body accounting, retry budgets,
// and full cascade coverage under every failed node.
func assertRandDAG(t *testing.T, d *graph.RandDAG, res *graph.GraphResult) {
	t.Helper()
	exp := d.ExpectedStates()
	maxA := d.Cfg.Retry.MaxAttempts
	for name, want := range exp {
		nr, ok := res.Nodes[name]
		if !ok {
			t.Fatalf("node %s missing from result (orphan)", name)
		}
		if !nr.State.Terminal() {
			t.Fatalf("node %s non-terminal state %s (orphan)", name, nr.StateName)
		}
		if nr.State != want {
			t.Fatalf("node %s state %s, want %s (doomed=%v flaky=%v deps=%v, err=%v)",
				name, nr.StateName, want, d.Doomed[name], d.Flaky[name], d.Deps[name], nr.Err)
		}
		switch {
		case nr.State == graph.NodeCanceled:
			if nr.BodyRuns != 0 {
				t.Fatalf("canceled node %s ran its body %d times", name, nr.BodyRuns)
			}
			var up *graph.ErrUpstream
			if !errors.As(nr.Err, &up) || !d.Doomed[up.Node] {
				t.Fatalf("canceled node %s err %v, want ErrUpstream rooted at a doomed node", name, nr.Err)
			}
			if !contains(d.Descendants(up.Node), name) {
				t.Fatalf("node %s blames %s but is not its descendant", name, up.Node)
			}
		case d.Doomed[name]:
			if nr.Attempts != maxA || nr.BodyRuns != int64(maxA) {
				t.Fatalf("doomed node %s attempts=%d bodyRuns=%d, want %d/%d", name, nr.Attempts, nr.BodyRuns, maxA, maxA)
			}
		case d.Flaky[name]:
			if nr.Attempts != maxA || nr.BodyRuns != int64(maxA) {
				t.Fatalf("flaky node %s attempts=%d bodyRuns=%d, want %d/%d (fail %d then succeed)",
					name, nr.Attempts, nr.BodyRuns, maxA, maxA, maxA-1)
			}
		default:
			if nr.Attempts != 1 || nr.BodyRuns != 1 {
				t.Fatalf("healthy node %s attempts=%d bodyRuns=%d, want 1/1", name, nr.Attempts, nr.BodyRuns)
			}
		}
	}
	// Every transitive descendant of every failed node must be canceled.
	for name := range d.Doomed {
		if res.Nodes[name].State != graph.NodeFailed {
			continue // doomed but already canceled by an upstream doom
		}
		for _, desc := range d.Descendants(name) {
			if st := res.Nodes[desc].State; st != graph.NodeCanceled {
				t.Fatalf("cascade miss: %s failed but descendant %s is %s", name, desc, st)
			}
		}
	}
	if res.Succeeded+res.Failed+res.Canceled != d.Graph.Len() {
		t.Fatalf("terminal counts %d+%d+%d != %d nodes", res.Succeeded, res.Failed, res.Canceled, d.Graph.Len())
	}
}
