package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestElasticSkewedProducersNothingLostOrDoubleRun hammers the deque and
// steal paths from deliberately skewed producers: one producer submits
// the bulk of the jobs in tight bursts (landing on one target deque)
// while others trickle. Every job must run exactly once — the per-job
// counters catch both a lost job (stranded in a deque) and a double run
// (a pop/steal race handing the same slot out twice).
func TestElasticSkewedProducersNothingLostOrDoubleRun(t *testing.T) {
	ex := NewElastic(20 * time.Millisecond)
	defer ex.Close()

	const heavy, light, lightProducers = 2000, 100, 4
	total := heavy + light*lightProducers
	runs := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	wg.Add(total)

	submit := func(id int) {
		ex.Execute(func() {
			runs[id].Add(1)
			wg.Done()
		})
	}

	var producers sync.WaitGroup
	producers.Add(1 + lightProducers)
	go func() { // the skewed producer: one long burst
		defer producers.Done()
		for i := 0; i < heavy; i++ {
			submit(i)
		}
	}()
	for p := 0; p < lightProducers; p++ {
		p := p
		go func() {
			defer producers.Done()
			for i := 0; i < light; i++ {
				submit(heavy + p*light + i)
				if i%8 == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	producers.Wait()
	wg.Wait()

	for id := range runs {
		if n := runs[id].Load(); n != 1 {
			t.Fatalf("job %d ran %d times, want exactly 1", id, n)
		}
	}
	st := ex.SchedStats()
	if st.Spawned+st.Reused != int64(total) {
		t.Fatalf("submission accounting: spawned %d + reused %d != %d submitted",
			st.Spawned, st.Reused, total)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d after full drain, want 0", st.Pending)
	}
}

// TestElasticStealsAreCounted drives a skewed burst whose jobs all block
// until the whole batch has been distributed: the burst lands on one
// target deque, so every other worker that serves a job must have stolen
// it, and SchedStats must say so.
func TestElasticStealsAreCounted(t *testing.T) {
	ex := NewElastic(time.Second)
	defer ex.Close()

	const n = 64
	gate := make(chan struct{})
	var entered, done sync.WaitGroup
	entered.Add(n)
	done.Add(n)
	for i := 0; i < n; i++ {
		ex.Execute(func() {
			entered.Done()
			<-gate
			done.Done()
		})
	}
	entered.Wait() // all n block simultaneously: n workers each hold one job
	close(gate)
	done.Wait()

	st := ex.SchedStats()
	if st.Steals == 0 {
		t.Fatalf("no steals counted for a single-producer burst of %d blocked jobs: %+v", n, st)
	}
	if st.Spawned+st.Reused != n {
		t.Fatalf("submission accounting: %d + %d != %d", st.Spawned, st.Reused, n)
	}
}

// TestElasticWakeupsAreBatched pins the wakeup-batching invariant: a
// burst submitted by one goroutine wakes at most one parked worker per
// burst from the submitter itself; the rest of the ramp-up happens
// through the claim-time cascade, which stops as soon as the backlog is
// drained. With short jobs the woken workers recycle quickly, so the
// total wake+spawn events stay well below one per task — the v2 design
// paid exactly one per task.
func TestElasticWakeupsAreBatched(t *testing.T) {
	ex := NewElastic(time.Minute) // workers never expire during the test
	defer ex.Close()

	// Warm the pool so a parked population exists, then let it park.
	const warm = 8
	var wg sync.WaitGroup
	gate := make(chan struct{})
	wg.Add(warm)
	for i := 0; i < warm; i++ {
		ex.Execute(func() { wg.Done(); <-gate })
	}
	wg.Wait()
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for ex.Idle() < warm && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	base := ex.SchedStats()

	const burst = 512
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		ex.Execute(func() { wg.Done() })
	}
	wg.Wait()

	st := ex.SchedStats()
	wakeEvents := (st.Wakes - base.Wakes) + (st.Spawned - base.Spawned) + (st.Thieves - base.Thieves)
	if wakeEvents > burst/2 {
		t.Fatalf("wakeups not batched: %d wake/spawn events for a %d-job burst of trivial tasks",
			wakeEvents, burst)
	}
	if st.Spawned+st.Reused != base.Spawned+base.Reused+burst {
		t.Fatalf("submission accounting drifted: %+v vs base %+v", st, base)
	}
}

// TestTenantAccountingExactAcrossSteals: two tenants submit skewed
// interleaved bursts over one pool. Because the accounting counters
// travel inside the submitted closure, a job stolen to another worker
// still debits its own tenant — submitted totals stay exact and inflight
// drains to zero for both, and the run must actually have stolen.
func TestTenantAccountingExactAcrossSteals(t *testing.T) {
	ex := NewElastic(time.Second)
	defer ex.Close()
	a, b := ex.Tenant("a"), ex.Tenant("b")

	const nA, nB = 600, 150
	var ran atomic.Int64
	var done sync.WaitGroup
	done.Add(nA + nB)
	for i := 0; i < nA; i++ {
		a.Execute(func() { ran.Add(1); done.Done() })
		if i < nB {
			b.Execute(func() { ran.Add(1); done.Done() })
		}
	}
	done.Wait()

	if sub, _ := a.Stats(); sub != nA {
		t.Fatalf("tenant a submitted=%d, want %d", sub, nA)
	}
	if sub, _ := b.Stats(); sub != nB {
		t.Fatalf("tenant b submitted=%d, want %d", sub, nB)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, infA := a.Stats()
		_, infB := b.Stats()
		if infA == 0 && infB == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, inf := a.Stats(); inf != 0 {
		t.Fatalf("tenant a inflight=%d after drain, want 0", inf)
	}
	if _, inf := b.Stats(); inf != 0 {
		t.Fatalf("tenant b inflight=%d after drain, want 0", inf)
	}
	if ran.Load() != nA+nB {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), nA+nB)
	}
}

// TestElasticCloseDrainsStrandedDequeJobs pins the shutdown-race fix: a
// submission that lands on a busy worker's deque through the TryLock
// fast path AFTER the closed flag is up (when ensureSearcher refuses to
// create searchers) must still run — Close's deque sweep re-launches
// it — even though the worker holding the deque never finishes its job
// until after the sweep.
func TestElasticCloseDrainsStrandedDequeJobs(t *testing.T) {
	ex := NewElastic(time.Hour)
	gate := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	ex.Execute(func() { entered.Done(); <-gate }) // the busy target worker
	entered.Wait()
	// Wait for the worker to leave the searching state, so ensureSearcher
	// would have no searcher to lean on.
	deadline := time.Now().Add(5 * time.Second)
	for ex.searching.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Reproduce the race window deterministically: the closed flag is up
	// (Close's first phase) but the deque sweep has not run yet.
	ex.mu.Lock()
	ex.closed = true
	ex.mu.Unlock()
	ran := make(chan struct{})
	ex.Execute(func() { close(ran) })
	// Now let Close run its sweep. The busy worker is still blocked, so
	// only the sweep can rescue a job stranded on its deque.
	closed := make(chan struct{})
	go func() { ex.Close(); close(closed) }()
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("job submitted during the Close race never ran")
	}
	close(gate) // release the busy worker so Close can finish
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not complete after the busy worker finished")
	}
}

// TestElasticDequeOverflowFallsBackToSpawn fills one target deque beyond
// its bound while every worker is blocked: the overflow submissions must
// seed fresh workers rather than being dropped or blocking the
// submitter.
func TestElasticDequeOverflowFallsBackToSpawn(t *testing.T) {
	ex := NewElastic(time.Second)
	defer ex.Close()

	const n = dequeCap + 64 // provably beyond one ring
	gate := make(chan struct{})
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		ex.Execute(func() {
			<-gate
			done.Done()
		})
	}
	// Every job blocks; the pool must have grown enough workers that all
	// n are held simultaneously (the §6.3 obligation, past a full ring).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, busy := ex.Workers(); busy == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, busy := ex.Workers(); busy != n {
		t.Fatalf("only %d of %d jobs running concurrently", busy, n)
	}
	close(gate)
	done.Wait()
}
